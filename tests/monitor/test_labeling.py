"""Unit tests for ground-truth labelling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.features import frame_shape
from repro.monitor.frames import pad_to_full_mesh
from repro.monitor.labeling import attack_direction_masks, attack_port_loads, victim_mask
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.scenario import AttackScenario

TOPO = MeshTopology(rows=6)


class TestVictimMask:
    def test_single_attacker_same_row(self):
        # Attacker 5 -> victim 0: victims are nodes 0..4 (row 0).
        scenario = AttackScenario(attackers=(5,), victim=0)
        mask = victim_mask(TOPO, scenario)
        assert mask.shape == (6, 6)
        assert np.all(mask[0, :5] == 1.0)
        assert mask[0, 5] == 0.0
        assert mask.sum() == 5

    def test_dogleg_route(self):
        # Attacker at (4,4)=28, victim at (1,1)=7: X leg row 4, Y leg column 1.
        scenario = AttackScenario(attackers=(28,), victim=7)
        mask = victim_mask(TOPO, scenario)
        expected_victims = {27, 26, 25, 19, 13, 7}
        assert mask.sum() == len(expected_victims)
        for node in expected_victims:
            x, y = TOPO.coordinates(node)
            assert mask[y, x] == 1.0

    def test_two_attackers_union(self):
        scenario = AttackScenario(attackers=(5, 30), victim=0)
        mask = victim_mask(TOPO, scenario)
        assert mask[0, 0] == 1.0  # victim flagged once even though on both routes
        assert mask.sum() == len(scenario.ground_truth_victims(TOPO))


class TestPortLoads:
    def test_east_flow_loads_east_ports(self):
        scenario = AttackScenario(attackers=(5,), victim=0)
        loads = attack_port_loads(TOPO, scenario)
        # Nodes 4,3,2,1,0 receive on their EAST ports.
        assert loads[Direction.EAST][0, :5].sum() == 5
        assert loads[Direction.WEST].sum() == 0
        assert loads[Direction.NORTH].sum() == 0

    def test_converging_flows_accumulate(self):
        # Two attackers east of the victim in the same row share route links.
        scenario = AttackScenario(attackers=(5, 4), victim=0)
        loads = attack_port_loads(TOPO, scenario)
        # Node 3 receives both flows on its EAST port.
        assert loads[Direction.EAST][0, 3] == 2.0

    def test_dogleg_uses_two_directions(self):
        scenario = AttackScenario(attackers=(28,), victim=7)
        loads = attack_port_loads(TOPO, scenario)
        assert loads[Direction.EAST].sum() > 0  # X leg (attacker east of victim)
        assert loads[Direction.NORTH].sum() > 0  # Y leg (moving south, enters via N)
        assert loads[Direction.WEST].sum() == 0
        assert loads[Direction.SOUTH].sum() == 0


class TestDirectionMasks:
    def test_shapes_match_frames(self):
        scenario = AttackScenario(attackers=(28,), victim=7)
        masks = attack_direction_masks(TOPO, scenario)
        for direction, mask in masks.items():
            assert mask.shape == frame_shape(TOPO, direction)
            assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_union_of_padded_masks_equals_victim_mask(self):
        scenario = AttackScenario(attackers=(28, 3), victim=7)
        masks = attack_direction_masks(TOPO, scenario)
        fused = np.zeros((6, 6))
        for direction, mask in masks.items():
            fused += pad_to_full_mesh(mask, TOPO, direction)
        assert np.allclose((fused > 0).astype(float), victim_mask(TOPO, scenario))

    @given(attacker=st.integers(0, 35), victim=st.integers(0, 35))
    @settings(max_examples=40, deadline=None)
    def test_mask_counts_match_route_length(self, attacker, victim):
        if attacker == victim:
            return
        scenario = AttackScenario(attackers=(attacker,), victim=victim)
        masks = attack_direction_masks(TOPO, scenario)
        total_marks = sum(int(m.sum()) for m in masks.values())
        # Every hop of the route marks exactly one directional input port.
        assert total_marks == TOPO.manhattan_distance(attacker, victim)
