"""Unit and property-based tests for frames, padding and orientation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.monitor.features import FeatureKind, frame_shape
from repro.monitor.frames import (
    DirectionalFrame,
    FrameSample,
    FrameSet,
    from_canonical,
    pad_to_full_mesh,
    to_canonical,
)
from repro.noc.topology import Direction, MeshTopology

TOPO = MeshTopology(rows=6)


def make_frame_set(kind=FeatureKind.VCO, fill=0.5, cycle=0):
    frames = {}
    for direction in Direction.cardinal():
        values = np.full(frame_shape(TOPO, direction), fill)
        frames[direction] = DirectionalFrame(direction, kind, values, cycle)
    return FrameSet(kind=kind, frames=frames, cycle=cycle)


class TestPadding:
    def test_east_pads_last_column(self):
        frame = np.ones(frame_shape(TOPO, Direction.EAST))
        full = pad_to_full_mesh(frame, TOPO, Direction.EAST)
        assert full.shape == (6, 6)
        assert np.all(full[:, -1] == 0)
        assert np.all(full[:, :-1] == 1)

    def test_west_pads_first_column(self):
        frame = np.ones(frame_shape(TOPO, Direction.WEST))
        full = pad_to_full_mesh(frame, TOPO, Direction.WEST)
        assert np.all(full[:, 0] == 0)
        assert np.all(full[:, 1:] == 1)

    def test_north_pads_top_row(self):
        frame = np.ones(frame_shape(TOPO, Direction.NORTH))
        full = pad_to_full_mesh(frame, TOPO, Direction.NORTH)
        assert np.all(full[-1, :] == 0)

    def test_south_pads_bottom_row(self):
        frame = np.ones(frame_shape(TOPO, Direction.SOUTH))
        full = pad_to_full_mesh(frame, TOPO, Direction.SOUTH)
        assert np.all(full[0, :] == 0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            pad_to_full_mesh(np.ones((6, 6)), TOPO, Direction.EAST)

    @given(direction=st.sampled_from(list(Direction.cardinal())))
    @settings(max_examples=20, deadline=None)
    def test_padding_preserves_values_and_sum(self, direction):
        rng = np.random.default_rng(0)
        frame = rng.random(frame_shape(TOPO, direction))
        full = pad_to_full_mesh(frame, TOPO, direction)
        assert full.shape == (TOPO.rows, TOPO.columns)
        assert np.isclose(full.sum(), frame.sum())


class TestCanonicalOrientation:
    @given(direction=st.sampled_from(list(Direction.cardinal())))
    @settings(max_examples=20, deadline=None)
    def test_round_trip(self, direction):
        rng = np.random.default_rng(1)
        frame = rng.random(frame_shape(TOPO, direction))
        assert np.allclose(from_canonical(to_canonical(frame, direction), direction), frame)

    def test_east_west_unchanged(self):
        frame = np.arange(30, dtype=float).reshape(6, 5)
        assert np.allclose(to_canonical(frame, Direction.EAST), frame)

    def test_north_transposed(self):
        frame = np.arange(30, dtype=float).reshape(5, 6)
        assert to_canonical(frame, Direction.NORTH).shape == (6, 5)

    def test_all_canonical_frames_share_shape(self):
        for direction in Direction.cardinal():
            frame = np.zeros(frame_shape(TOPO, direction))
            assert to_canonical(frame, direction).shape == (6, 5)


class TestDirectionalFrame:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            DirectionalFrame(Direction.EAST, FeatureKind.VCO, np.zeros(5))

    def test_normalized_copy(self):
        frame = DirectionalFrame(
            Direction.EAST, FeatureKind.BOC, np.array([[2.0, 4.0], [1.0, 0.0]])
        )
        normalized = frame.normalized("max")
        assert normalized.values.max() == 1.0
        assert frame.values.max() == 4.0  # original untouched

    def test_statistics(self):
        frame = DirectionalFrame(
            Direction.EAST, FeatureKind.VCO, np.array([[0.0, 1.0], [0.5, 0.5]])
        )
        assert frame.max_value() == 1.0
        assert frame.mean_value() == 0.5


class TestFrameSet:
    def test_requires_all_directions(self):
        frames = {
            Direction.EAST: DirectionalFrame(
                Direction.EAST, FeatureKind.VCO, np.zeros(frame_shape(TOPO, Direction.EAST))
            )
        }
        with pytest.raises(ValueError):
            FrameSet(kind=FeatureKind.VCO, frames=frames)

    def test_detector_input_stacks_four_channels(self):
        frame_set = make_frame_set()
        stacked = frame_set.as_detector_input()
        assert stacked.shape == (6, 5, 4)

    def test_detector_input_channel_order_is_enws(self):
        frames = {}
        for i, direction in enumerate(Direction.cardinal()):
            values = np.full(frame_shape(TOPO, direction), float(i))
            frames[direction] = DirectionalFrame(direction, FeatureKind.VCO, values)
        stacked = FrameSet(kind=FeatureKind.VCO, frames=frames).as_detector_input()
        for i in range(4):
            assert np.all(stacked[..., i] == float(i))

    def test_detector_input_normalization(self):
        frame_set = make_frame_set(kind=FeatureKind.BOC, fill=10.0)
        stacked = frame_set.as_detector_input(normalize="max")
        assert stacked.max() == 1.0

    def test_max_value(self):
        assert make_frame_set(fill=0.75).max_value() == 0.75


class TestFrameSample:
    def test_feature_selector(self):
        sample = FrameSample(
            cycle=5,
            vco=make_frame_set(FeatureKind.VCO),
            boc=make_frame_set(FeatureKind.BOC),
            attack_active=True,
        )
        assert sample.feature(FeatureKind.VCO) is sample.vco
        assert sample.feature(FeatureKind.BOC) is sample.boc
        assert sample.attack_active
