"""Unit tests for the synthetic traffic patterns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import MeshTopology
from repro.traffic.synthetic import (
    SYNTHETIC_PATTERNS,
    BitComplementTraffic,
    BitRotationTraffic,
    NeighborTraffic,
    ShuffleTraffic,
    TornadoTraffic,
    UniformRandomTraffic,
    make_synthetic_traffic,
)

TOPO8 = MeshTopology(rows=8)


class TestFactory:
    def test_all_six_patterns_registered(self):
        assert set(SYNTHETIC_PATTERNS) == {
            "uniform_random",
            "tornado",
            "shuffle",
            "neighbor",
            "bit_rotation",
            "bit_complement",
        }

    def test_name_normalisation(self):
        traffic = make_synthetic_traffic("Bit Complement", TOPO8)
        assert isinstance(traffic, BitComplementTraffic)

    def test_unknown_pattern(self):
        with pytest.raises(KeyError):
            make_synthetic_traffic("transpose", TOPO8)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic(TOPO8, injection_rate=1.5)


class TestDestinations:
    def test_uniform_random_never_self(self):
        traffic = UniformRandomTraffic(TOPO8, seed=0)
        for source in range(TOPO8.num_nodes):
            for _ in range(5):
                assert traffic.destination_for(source) != source

    def test_uniform_random_covers_many_destinations(self):
        traffic = UniformRandomTraffic(TOPO8, seed=0)
        destinations = {traffic.destination_for(0) for _ in range(200)}
        assert len(destinations) > 30

    def test_bit_complement(self):
        traffic = BitComplementTraffic(TOPO8)
        assert traffic.destination_for(0) == 63
        assert traffic.destination_for(63) == 0
        assert traffic.destination_for(21) == 42

    def test_bit_complement_is_involution(self):
        traffic = BitComplementTraffic(TOPO8)
        for node in TOPO8.nodes():
            assert traffic.destination_for(traffic.destination_for(node)) == node

    def test_shuffle_rotates_left(self):
        traffic = ShuffleTraffic(TOPO8)
        # 64 nodes -> 6 bits; 0b000001 -> 0b000010
        assert traffic.destination_for(1) == 2
        # MSB wraps to LSB: 0b100000 -> 0b000001
        assert traffic.destination_for(32) == 1

    def test_bit_rotation_rotates_right(self):
        traffic = BitRotationTraffic(TOPO8)
        # 0b000010 -> 0b000001
        assert traffic.destination_for(2) == 1
        # LSB wraps to MSB: 0b000001 -> 0b100000
        assert traffic.destination_for(1) == 32

    def test_shuffle_and_rotation_are_inverses(self):
        shuffle = ShuffleTraffic(TOPO8)
        rotation = BitRotationTraffic(TOPO8)
        for node in TOPO8.nodes():
            assert rotation.destination_for(shuffle.destination_for(node)) == node

    def test_neighbor_sends_east_with_wraparound(self):
        traffic = NeighborTraffic(TOPO8)
        assert traffic.destination_for(0) == 1
        assert traffic.destination_for(7) == 0  # east edge wraps to column 0

    def test_tornado_offset(self):
        traffic = TornadoTraffic(TOPO8)
        dest = traffic.destination_for(0)
        x, y = TOPO8.coordinates(dest)
        assert x == 3  # half minus one of 8 columns
        assert y == 3

    @given(pattern=st.sampled_from(sorted(SYNTHETIC_PATTERNS)), node=st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_destinations_always_on_mesh(self, pattern, node):
        traffic = make_synthetic_traffic(pattern, TOPO8, seed=3)
        assert traffic.destination_for(node) in TOPO8


class TestInjectionProcess:
    def test_rate_zero_generates_nothing(self):
        traffic = UniformRandomTraffic(TOPO8, injection_rate=0.0)
        assert traffic.packets_for_cycle(0) == []

    def test_rate_statistics(self):
        traffic = UniformRandomTraffic(TOPO8, injection_rate=0.05, seed=1)
        total = sum(len(traffic.packets_for_cycle(c)) for c in range(200))
        expected = 0.05 * TOPO8.num_nodes * 200
        assert 0.7 * expected < total < 1.3 * expected

    def test_packets_are_benign_and_timestamped(self):
        traffic = UniformRandomTraffic(TOPO8, injection_rate=0.5, seed=2)
        packets = traffic.packets_for_cycle(17)
        assert packets
        assert all(not p.is_malicious for p in packets)
        assert all(p.created_cycle == 17 for p in packets)

    def test_reproducible_with_seed(self):
        a = UniformRandomTraffic(TOPO8, injection_rate=0.1, seed=9)
        b = UniformRandomTraffic(TOPO8, injection_rate=0.1, seed=9)
        pa = [(p.source, p.destination) for p in a.packets_for_cycle(0)]
        pb = [(p.source, p.destination) for p in b.packets_for_cycle(0)]
        assert pa == pb

    def test_neighbor_pattern_self_traffic_skipped(self):
        # On a 1-column mesh the neighbor pattern maps every node to itself.
        topo = MeshTopology(rows=4, columns=1)
        traffic = NeighborTraffic(topo, injection_rate=1.0)
        assert traffic.packets_for_cycle(0) == []
