"""Unit tests for the PARSEC-like workload models."""

import numpy as np
import pytest

from repro.noc.topology import MeshTopology
from repro.traffic.parsec import (
    PARSEC_WORKLOADS,
    ParsecPhase,
    ParsecWorkload,
    make_parsec_workload,
)
from repro.traffic.synthetic import UniformRandomTraffic

TOPO = MeshTopology(rows=8)


class TestPhases:
    def test_three_workloads_defined(self):
        assert set(PARSEC_WORKLOADS) == {"blackscholes", "bodytrack", "x264"}

    def test_phase_fractions_sum_to_one(self):
        for phases in PARSEC_WORKLOADS.values():
            assert sum(p.duration_fraction for p in phases) == pytest.approx(1.0)

    def test_invalid_phase(self):
        with pytest.raises(ValueError):
            ParsecPhase("bad", duration_fraction=0.0, injection_rate=0.01)
        with pytest.raises(ValueError):
            ParsecPhase("bad", duration_fraction=0.5, injection_rate=2.0)

    def test_phase_at_progression(self):
        workload = ParsecWorkload("blackscholes", TOPO, total_cycles=1000)
        assert workload.phase_at(0).name == "init"
        assert workload.phase_at(500).name == "roi"
        assert workload.phase_at(950).name == "finish"

    def test_phase_wraps_around(self):
        workload = ParsecWorkload("blackscholes", TOPO, total_cycles=1000)
        assert workload.phase_at(1000).name == workload.phase_at(0).name


class TestConstruction:
    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            ParsecWorkload("ferret", TOPO)

    def test_custom_phases_must_sum_to_one(self):
        phases = (
            ParsecPhase("a", 0.5, 0.01),
            ParsecPhase("b", 0.2, 0.01),
        )
        with pytest.raises(ValueError):
            ParsecWorkload("custom", TOPO, phases=phases)

    def test_memory_controllers_at_corners(self):
        workload = make_parsec_workload("bodytrack", TOPO)
        assert set(workload.memory_controllers) <= set(TOPO.nodes())
        assert 0 in workload.memory_controllers
        assert 63 in workload.memory_controllers

    def test_extra_memory_controllers_placed(self):
        workload = ParsecWorkload("x264", TOPO, num_memory_controllers=6)
        assert len(workload.memory_controllers) == 6


class TestTrafficCharacteristics:
    def test_lower_rate_than_synthetic(self):
        """PARSEC traffic is roughly an order of magnitude lighter than STP."""
        parsec = make_parsec_workload("blackscholes", TOPO, total_cycles=600, seed=0)
        synthetic = UniformRandomTraffic(TOPO, injection_rate=0.02, seed=0)
        parsec_packets = sum(len(parsec.packets_for_cycle(c)) for c in range(600))
        synthetic_packets = sum(len(synthetic.packets_for_cycle(c)) for c in range(600))
        assert parsec_packets < 0.6 * synthetic_packets

    def test_destinations_valid_and_not_self(self):
        workload = make_parsec_workload("x264", TOPO, seed=1)
        for cycle in range(0, 400, 7):
            for packet in workload.packets_for_cycle(cycle):
                assert packet.destination in TOPO
                assert packet.destination != packet.source

    def test_hotspot_traffic_targets_memory_controllers(self):
        workload = make_parsec_workload("blackscholes", TOPO, seed=2)
        controller_hits = 0
        total = 0
        for cycle in range(1500):
            for packet in workload.packets_for_cycle(cycle):
                total += 1
                if packet.destination in workload.memory_controllers:
                    controller_hits += 1
        assert total > 0
        assert controller_hits / total > 0.3

    def test_reproducible_with_seed(self):
        a = make_parsec_workload("bodytrack", TOPO, seed=5)
        b = make_parsec_workload("bodytrack", TOPO, seed=5)
        pa = [(p.source, p.destination) for c in range(50) for p in a.packets_for_cycle(c)]
        pb = [(p.source, p.destination) for c in range(50) for p in b.packets_for_cycle(c)]
        assert pa == pb
