"""Unit tests for the refined FIR-adjustable flooding DoS model."""

import numpy as np
import pytest

from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import MeshTopology
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

TOPO = MeshTopology(rows=6)


class TestFloodingConfig:
    def test_valid(self):
        config = FloodingConfig(attackers=(1, 2), victim=20, fir=0.5)
        assert config.num_attackers == 2

    def test_invalid_fir(self):
        with pytest.raises(ValueError):
            FloodingConfig(attackers=(1,), victim=2, fir=1.5)

    def test_empty_attackers(self):
        with pytest.raises(ValueError):
            FloodingConfig(attackers=(), victim=2)

    def test_victim_cannot_attack_itself(self):
        with pytest.raises(ValueError):
            FloodingConfig(attackers=(3,), victim=3)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            FloodingConfig(attackers=(1,), victim=2, start_cycle=10, end_cycle=5)

    def test_node_outside_mesh_rejected(self):
        config = FloodingConfig(attackers=(100,), victim=2)
        with pytest.raises(ValueError):
            FloodingAttacker(config, TOPO)


class TestInjectionBehaviour:
    def test_fir_zero_is_inactive(self):
        attacker = FloodingAttacker(FloodingConfig(attackers=(1,), victim=30, fir=0.0), TOPO)
        assert not attacker.active
        assert attacker.packets_for_cycle(5) == []

    def test_fir_one_injects_every_cycle(self):
        attacker = FloodingAttacker(FloodingConfig(attackers=(1,), victim=30, fir=1.0), TOPO)
        for cycle in range(20):
            packets = attacker.packets_for_cycle(cycle)
            assert len(packets) == 1
            assert packets[0].is_malicious
            assert packets[0].source == 1
            assert packets[0].destination == 30

    def test_fir_controls_rate(self):
        attacker = FloodingAttacker(
            FloodingConfig(attackers=(1,), victim=30, fir=0.3), TOPO, seed=0
        )
        total = sum(len(attacker.packets_for_cycle(c)) for c in range(2000))
        assert 0.25 * 2000 < total < 0.35 * 2000

    def test_multiple_attackers_inject_independently(self):
        attacker = FloodingAttacker(
            FloodingConfig(attackers=(1, 7, 20), victim=30, fir=1.0), TOPO
        )
        packets = attacker.packets_for_cycle(0)
        assert sorted(p.source for p in packets) == [1, 7, 20]

    def test_attack_window(self):
        attacker = FloodingAttacker(
            FloodingConfig(attackers=(1,), victim=30, fir=1.0, start_cycle=10, end_cycle=20),
            TOPO,
        )
        assert attacker.packets_for_cycle(5) == []
        assert attacker.packets_for_cycle(15) != []
        assert attacker.packets_for_cycle(25) == []
        assert attacker.is_active_at(10)
        assert not attacker.is_active_at(20)


class TestSystemImpact:
    @staticmethod
    def _run(fir, cycles=500):
        sim = NoCSimulator(SimulationConfig(rows=6, warmup_cycles=0, seed=1))
        sim.add_source(UniformRandomTraffic(sim.topology, injection_rate=0.03, seed=1))
        if fir > 0:
            sim.add_source(
                FloodingAttacker(
                    FloodingConfig(attackers=(35, 30), victim=0, fir=fir), sim.topology, seed=2
                )
            )
        sim.run(cycles)
        sim.drain(max_cycles=2000)
        return sim

    def test_flooding_increases_benign_latency(self):
        """Figure 1's core claim: benign latency grows with the FIR."""
        baseline = self._run(0.0).latency(benign_only=True).packet_latency
        attacked = self._run(0.9).latency(benign_only=True).packet_latency
        assert attacked > baseline

    def test_flooding_congests_route_buffers(self):
        sim = self._run(1.0, cycles=300)
        victim_router = sim.network.router(0)
        total_boc = sum(victim_router.boc(d) for d in victim_router.input_ports)
        assert total_boc > 0
