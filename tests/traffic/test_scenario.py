"""Unit tests for attack-scenario composition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import xy_route_victims
from repro.noc.topology import MeshTopology
from repro.traffic.scenario import (
    AttackScenario,
    MultiAttackScenario,
    ScenarioGenerator,
    benchmark_names,
)

TOPO = MeshTopology(rows=8)


class TestBenchmarkNames:
    def test_six_plus_three(self):
        names = benchmark_names()
        assert len(names) == 9
        assert "uniform_random" in names
        assert "x264" in names

    def test_synthetic_only(self):
        assert len(benchmark_names(include_parsec=False)) == 6


class TestAttackScenario:
    def test_valid(self):
        scenario = AttackScenario(attackers=(10, 20), victim=5, fir=0.8)
        assert scenario.num_attackers == 2

    def test_victim_not_attacker(self):
        with pytest.raises(ValueError):
            AttackScenario(attackers=(5,), victim=5)

    def test_requires_attackers(self):
        with pytest.raises(ValueError):
            AttackScenario(attackers=(), victim=5)

    def test_invalid_fir(self):
        with pytest.raises(ValueError):
            AttackScenario(attackers=(1,), victim=5, fir=-0.1)

    def test_flooding_config_conversion(self):
        scenario = AttackScenario(attackers=(10,), victim=5, fir=0.6)
        config = scenario.flooding_config(packet_size_flits=8)
        assert config.attackers == (10,)
        assert config.victim == 5
        assert config.fir == 0.6
        assert config.packet_size_flits == 8

    def test_attacker_source_construction(self):
        scenario = AttackScenario(attackers=(10,), victim=5, fir=1.0)
        attacker = scenario.attacker_source(TOPO, seed=0)
        packets = attacker.packets_for_cycle(0)
        assert packets[0].source == 10

    def test_ground_truth_victims_single_attacker(self):
        scenario = AttackScenario(attackers=(3,), victim=0)
        assert scenario.ground_truth_victims(TOPO) == set(xy_route_victims(TOPO, 3, 0))

    def test_ground_truth_victims_union_of_routes(self):
        scenario = AttackScenario(attackers=(3, 24), victim=0)
        expected = set(xy_route_victims(TOPO, 3, 0)) | set(xy_route_victims(TOPO, 24, 0))
        assert scenario.ground_truth_victims(TOPO) == expected

    def test_describe_mentions_key_facts(self):
        scenario = AttackScenario(attackers=(3,), victim=0, fir=0.8, benchmark="tornado")
        text = scenario.describe()
        assert "tornado" in text
        assert "0.8" in text


class TestScenarioGenerator:
    def test_respects_attacker_count_and_distance(self):
        generator = ScenarioGenerator(TOPO, seed=0)
        scenario = generator.random_scenario(num_attackers=2, min_distance=3)
        assert scenario.num_attackers == 2
        for attacker in scenario.attackers:
            assert TOPO.manhattan_distance(attacker, scenario.victim) >= 3

    def test_reproducible(self):
        a = ScenarioGenerator(TOPO, seed=42).random_scenario()
        b = ScenarioGenerator(TOPO, seed=42).random_scenario()
        assert a == b

    def test_invalid_attacker_count(self):
        generator = ScenarioGenerator(TOPO, seed=0)
        with pytest.raises(ValueError):
            generator.random_scenario(num_attackers=0)
        with pytest.raises(ValueError):
            generator.random_scenario(num_attackers=TOPO.num_nodes)

    def test_suite_covers_all_benchmarks(self):
        generator = ScenarioGenerator(TOPO, seed=1)
        suite = generator.scenario_suite(scenarios_per_benchmark=2)
        assert len(suite) == 18  # the paper's "18 attack scenarios"
        assert {s.benchmark for s in suite} == set(benchmark_names())

    def test_suite_alternates_attacker_counts(self):
        generator = ScenarioGenerator(TOPO, seed=2)
        suite = generator.scenario_suite(
            benchmarks=["uniform_random"], scenarios_per_benchmark=2
        )
        assert [s.num_attackers for s in suite] == [1, 2]

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_generated_scenarios_always_valid(self, seed):
        generator = ScenarioGenerator(TOPO, seed=seed)
        scenario = generator.random_scenario(num_attackers=2)
        assert scenario.victim not in scenario.attackers
        assert len(set(scenario.attackers)) == 2
        assert all(node in TOPO for node in scenario.attackers)


class TestMultiAttackScenario:
    def flows(self):
        return (
            AttackScenario(attackers=(62,), victim=9, fir=0.8),
            AttackScenario(attackers=(7,), victim=54, fir=0.4),
        )

    def test_aggregate_views(self):
        scenario = MultiAttackScenario(flows=self.flows())
        assert scenario.attackers == (7, 62)
        assert scenario.victims == (9, 54)
        assert scenario.num_attackers == 2
        assert scenario.num_flows == 2

    def test_duplicate_victims_rejected(self):
        with pytest.raises(ValueError):
            MultiAttackScenario(
                flows=(
                    AttackScenario(attackers=(62,), victim=9),
                    AttackScenario(attackers=(7,), victim=9),
                )
            )

    def test_shared_attacker_rejected(self):
        with pytest.raises(ValueError):
            MultiAttackScenario(
                flows=(
                    AttackScenario(attackers=(62,), victim=9),
                    AttackScenario(attackers=(62,), victim=54),
                )
            )

    def test_attacker_as_other_flows_victim_rejected(self):
        with pytest.raises(ValueError):
            MultiAttackScenario(
                flows=(
                    AttackScenario(attackers=(62,), victim=9),
                    AttackScenario(attackers=(9,), victim=54),
                )
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiAttackScenario(flows=())

    def test_with_fir_overrides_every_flow(self):
        scenario = MultiAttackScenario(flows=self.flows()).with_fir(0.6)
        assert all(flow.fir == 0.6 for flow in scenario.flows)

    def test_attacker_sources_one_per_flow(self):
        scenario = MultiAttackScenario(flows=self.flows())
        sources = scenario.attacker_sources(TOPO, seed=3, start_cycle=100)
        assert [s.config.attackers for s in sources] == [(62,), (7,)]
        assert all(s.config.start_cycle == 100 for s in sources)
        # independent RNG streams per flow
        assert sources[0].rng is not sources[1].rng

    def test_ground_truth_union(self):
        scenario = MultiAttackScenario(flows=self.flows())
        union = scenario.ground_truth_victims(TOPO)
        for flow in scenario.flows:
            assert flow.ground_truth_victims(TOPO) <= union

    def test_describe_mentions_every_flow(self):
        text = MultiAttackScenario(flows=self.flows()).describe()
        assert "62" in text and "54" in text


class TestRandomMultiScenario:
    def test_flows_are_node_disjoint(self):
        generator = ScenarioGenerator(TOPO, seed=4)
        scenario = generator.random_multi_scenario(num_flows=3)
        roles = list(scenario.attackers) + list(scenario.victims)
        assert len(roles) == len(set(roles))

    def test_no_attacker_on_another_flows_route(self):
        generator = ScenarioGenerator(TOPO, seed=4)
        for _ in range(20):
            scenario = generator.random_multi_scenario(num_flows=2)
            for flow in scenario.flows:
                others = set(scenario.attackers) - set(flow.attackers)
                assert not flow.ground_truth_victims(TOPO) & others

    def test_victim_separation_honoured(self):
        generator = ScenarioGenerator(TOPO, seed=5)
        scenario = generator.random_multi_scenario(
            num_flows=2, min_victim_separation=4
        )
        v1, v2 = scenario.victims
        assert TOPO.manhattan_distance(v1, v2) >= 4

    def test_same_seed_same_scenario(self):
        a = ScenarioGenerator(TOPO, seed=11).random_multi_scenario(num_flows=2)
        b = ScenarioGenerator(TOPO, seed=11).random_multi_scenario(num_flows=2)
        assert a == b

    def test_invalid_flow_count(self):
        with pytest.raises(ValueError):
            ScenarioGenerator(TOPO, seed=0).random_multi_scenario(num_flows=0)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_generated_multi_scenarios_always_valid(self, seed):
        generator = ScenarioGenerator(TOPO, seed=seed)
        scenario = generator.random_multi_scenario(num_flows=2)
        assert scenario.num_flows == 2
        assert len(set(scenario.victims)) == 2
        assert not set(scenario.attackers) & set(scenario.victims)
