"""Unit tests for activation layers (values and gradients)."""

import numpy as np
import pytest

from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Softmax, Tanh


def numeric_gradient(layer, x, grad_out, eps=1e-6):
    """Central-difference gradient of sum(forward(x) * grad_out)."""
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = float(np.sum(layer.forward(x) * grad_out))
        flat_x[i] = original - eps
        minus = float(np.sum(layer.forward(x) * grad_out))
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


class TestReLU:
    def test_forward_clips_negative(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks_gradient(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.allclose(grad, [[0.0, 5.0]])


class TestLeakyReLU:
    def test_forward_scales_negative(self):
        layer = LeakyReLU(alpha=0.1)
        out = layer.forward(np.array([[-2.0, 4.0]]))
        assert np.allclose(out, [[-0.2, 4.0]])

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.5)

    def test_gradient_matches_numeric(self):
        layer = LeakyReLU(alpha=0.2)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4))
        grad_out = rng.normal(size=(3, 4))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numeric_gradient(layer, x.copy(), grad_out)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestSigmoid:
    def test_range(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-100.0, 0.0, 100.0]]))
        assert np.all((out >= 0.0) & (out <= 1.0))
        assert np.isclose(out[0, 1], 0.5)

    def test_numerical_stability_extreme_inputs(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-1e6, 1e6]]))
        assert np.isfinite(out).all()

    def test_gradient_matches_numeric(self):
        layer = Sigmoid()
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 5))
        grad_out = rng.normal(size=(2, 5))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numeric_gradient(layer, x.copy(), grad_out)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestTanh:
    def test_gradient_matches_numeric(self):
        layer = Tanh()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3))
        grad_out = rng.normal(size=(2, 3))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numeric_gradient(layer, x.copy(), grad_out)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        layer = Softmax()
        out = layer.forward(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_shift_invariance(self):
        layer = Softmax()
        x = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(layer.forward(x), layer.forward(x + 100.0))

    def test_gradient_matches_numeric(self):
        layer = Softmax()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 4))
        grad_out = rng.normal(size=(2, 4))
        layer.forward(x)
        analytic = layer.backward(grad_out)
        numeric = numeric_gradient(layer, x.copy(), grad_out)
        assert np.allclose(analytic, numeric, atol=1e-5)
