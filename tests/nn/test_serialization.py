"""Unit tests for model save/load."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.model import Sequential
from repro.nn.serialization import load_model, save_model


def build_model(seed=0):
    model = Sequential(
        [
            Conv2D(filters=4, kernel_size=3, padding="same"),
            ReLU(),
            MaxPool2D(pool_size=2),
            Flatten(),
            Dense(1),
            Sigmoid(),
        ],
        seed=seed,
    )
    model.build((6, 6, 2))
    return model


class TestSaveLoad:
    def test_round_trip_preserves_predictions(self, tmp_path):
        model = build_model()
        x = np.random.default_rng(0).normal(size=(3, 6, 6, 2))
        expected = model.predict(x)
        path = save_model(model, tmp_path / "model.npz")
        restored = load_model(path)
        assert np.allclose(restored.predict(x), expected)

    def test_round_trip_preserves_architecture(self, tmp_path):
        model = build_model()
        path = save_model(model, tmp_path / "model.npz")
        restored = load_model(path)
        assert [type(l).__name__ for l in restored.layers] == [
            type(l).__name__ for l in model.layers
        ]
        assert restored.num_parameters == model.num_parameters
        assert restored.input_shape == model.input_shape

    def test_save_appends_npz_suffix(self, tmp_path):
        model = build_model()
        path = save_model(model, tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_load_accepts_path_without_suffix(self, tmp_path):
        model = build_model()
        save_model(model, tmp_path / "model")
        restored = load_model(tmp_path / "model")
        assert restored.num_parameters == model.num_parameters

    def test_save_unbuilt_model_rejected(self, tmp_path):
        model = Sequential([Dense(1)])
        with pytest.raises(ValueError):
            save_model(model, tmp_path / "model.npz")

    def test_creates_parent_directories(self, tmp_path):
        model = build_model()
        path = save_model(model, tmp_path / "nested" / "dir" / "model.npz")
        assert path.exists()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "does_not_exist.npz")
