"""Unit tests for the training loop and dataset utilities."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.optimizers import Adam
from repro.nn.training import EarlyStopping, Trainer, train_test_split


def make_separable_dataset(n=120, seed=0):
    """Two Gaussian blobs that a small MLP separates easily."""
    rng = np.random.default_rng(seed)
    half = n // 2
    x0 = rng.normal(-1.0, 0.5, size=(half, 2))
    x1 = rng.normal(1.0, 0.5, size=(half, 2))
    x = np.vstack([x0, x1])
    y = np.vstack([np.zeros((half, 1)), np.ones((half, 1))])
    return x, y


def make_mlp(seed=0):
    return Sequential([Dense(8), ReLU(), Dense(1), Sigmoid()], seed=seed)


class TestTrainTestSplit:
    def test_sizes(self):
        x = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.25, seed=0)
        assert x_te.shape[0] == 5
        assert x_tr.shape[0] == 15
        assert y_tr.shape[0] == 15

    def test_partition_is_disjoint_and_complete(self):
        x = np.arange(30)
        x_tr, x_te = train_test_split(x, test_fraction=0.3, seed=1)
        assert sorted(np.concatenate([x_tr, x_te]).tolist()) == list(range(30))

    def test_rows_stay_aligned(self):
        x = np.arange(20)
        y = np.arange(20) * 10
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.2, seed=2)
        assert np.all(y_tr == x_tr * 10)
        assert np.all(y_te == x_te * 10)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_fraction=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), np.arange(5))


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0)
        assert not stopper.update(1.0)
        assert not stopper.update(1.0)
        assert stopper.update(1.0)

    def test_reset_on_improvement(self):
        stopper = EarlyStopping(patience=2, min_delta=0.01)
        assert not stopper.update(1.0)
        assert not stopper.update(0.99)  # no real improvement vs min_delta? (1.0-0.99 < ...)
        assert not stopper.update(0.5)  # big improvement resets the counter
        assert not stopper.update(0.5)
        assert stopper.update(0.5)


class TestTrainer:
    def test_learns_separable_data(self):
        x, y = make_separable_dataset()
        model = make_mlp()
        trainer = Trainer(model, loss="bce", optimizer=Adam(learning_rate=0.05))
        history = trainer.fit(x, y, epochs=60, batch_size=16)
        assert history.metric[-1] > 0.95
        assert history.loss[-1] < history.loss[0]

    def test_history_tracks_validation(self):
        x, y = make_separable_dataset()
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, test_fraction=0.25, seed=0)
        model = make_mlp()
        trainer = Trainer(model, loss="bce", optimizer=Adam(learning_rate=0.05))
        history = trainer.fit(
            x_tr, y_tr, epochs=20, batch_size=16, validation_data=(x_te, y_te)
        )
        assert len(history.val_loss) == history.epochs
        assert len(history.val_metric) == history.epochs

    def test_early_stopping_cuts_training(self):
        x, y = make_separable_dataset()
        model = make_mlp()
        trainer = Trainer(model, loss="bce", optimizer=Adam(learning_rate=0.05))
        history = trainer.fit(
            x, y, epochs=500, batch_size=16, early_stopping=EarlyStopping(patience=3)
        )
        assert history.epochs < 500

    def test_evaluate_returns_loss_and_metric(self):
        x, y = make_separable_dataset()
        model = make_mlp()
        trainer = Trainer(model, loss="bce", optimizer=Adam(learning_rate=0.05))
        trainer.fit(x, y, epochs=40, batch_size=16)
        loss, metric = trainer.evaluate(x, y)
        assert loss < 0.3
        assert metric > 0.9

    def test_rejects_empty_dataset(self):
        trainer = Trainer(make_mlp())
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((0, 2)), np.zeros((0, 1)))

    def test_rejects_misaligned_data(self):
        trainer = Trainer(make_mlp())
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 2)), np.zeros((3, 1)))

    def test_best_epoch(self):
        x, y = make_separable_dataset()
        model = make_mlp()
        trainer = Trainer(model, loss="bce", optimizer=Adam(learning_rate=0.05))
        history = trainer.fit(x, y, epochs=10, batch_size=16)
        assert 0 <= history.best_epoch() < history.epochs

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            Trainer(make_mlp(), metric="auc")
