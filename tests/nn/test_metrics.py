"""Unit tests for classification/segmentation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.nn.metrics import (
    ClassificationReport,
    accuracy_score,
    confusion_counts,
    dice_coefficient,
    f1_score,
    iou_score,
    precision_score,
    recall_score,
    segmentation_report,
)


class TestConfusionCounts:
    def test_known_values(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        tp, fp, tn, fn = confusion_counts(y_true, y_pred)
        assert (tp, fp, tn, fn) == (2, 1, 1, 1)

    def test_threshold_applied_to_scores(self):
        y_true = np.array([1, 0])
        scores = np.array([0.7, 0.6])
        assert confusion_counts(y_true, scores, threshold=0.65) == (1, 0, 1, 0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([1, 0]), np.array([1, 0, 1]))


class TestScalarMetrics:
    def test_perfect_prediction(self):
        y = np.array([1, 0, 1, 0])
        assert accuracy_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    def test_all_wrong(self):
        y_true = np.array([1, 0])
        y_pred = np.array([0, 1])
        assert accuracy_score(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_precision_with_no_positive_predictions(self):
        assert precision_score(np.array([1, 1]), np.array([0, 0])) == 1.0

    def test_recall_with_no_positives(self):
        assert recall_score(np.array([0, 0]), np.array([0, 1])) == 1.0

    def test_known_mixed_case(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        assert np.isclose(precision_score(y_true, y_pred), 2 / 3)
        assert np.isclose(recall_score(y_true, y_pred), 2 / 3)
        assert np.isclose(accuracy_score(y_true, y_pred), 4 / 6)

    @given(
        y_true=npst.arrays(np.int64, 20, elements=st.integers(0, 1)),
        y_pred=npst.arrays(np.int64, 20, elements=st.integers(0, 1)),
    )
    @settings(max_examples=30, deadline=None)
    def test_f1_is_harmonic_mean(self, y_true, y_pred):
        precision = precision_score(y_true, y_pred)
        recall = recall_score(y_true, y_pred)
        f1 = f1_score(y_true, y_pred)
        if precision + recall > 0:
            assert np.isclose(f1, 2 * precision * recall / (precision + recall))
        else:
            assert f1 == 0.0

    @given(
        y_true=npst.arrays(np.int64, 30, elements=st.integers(0, 1)),
        y_pred=npst.arrays(np.int64, 30, elements=st.integers(0, 1)),
    )
    @settings(max_examples=30, deadline=None)
    def test_metrics_bounded(self, y_true, y_pred):
        for metric in (accuracy_score, precision_score, recall_score, f1_score):
            assert 0.0 <= metric(y_true, y_pred) <= 1.0


class TestMaskMetrics:
    def test_dice_identical(self):
        mask = np.ones((4, 4))
        assert dice_coefficient(mask, mask) == 1.0

    def test_dice_empty_masks(self):
        empty = np.zeros((4, 4))
        assert dice_coefficient(empty, empty) == 1.0
        assert iou_score(empty, empty) == 1.0

    def test_dice_half_overlap(self):
        a = np.zeros(4)
        a[:2] = 1
        b = np.zeros(4)
        b[1:3] = 1
        assert np.isclose(dice_coefficient(a, b), 0.5)

    def test_iou_relation_to_dice(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, size=50)
        b = rng.integers(0, 2, size=50)
        dice = dice_coefficient(a, b)
        iou = iou_score(a, b)
        assert np.isclose(dice, 2 * iou / (1 + iou))


class TestReports:
    def test_from_predictions(self):
        y_true = np.array([1, 0, 1, 1])
        y_pred = np.array([0.9, 0.2, 0.4, 0.8])
        report = ClassificationReport.from_predictions(y_true, y_pred)
        assert report.support == 4
        assert np.isclose(report.precision, 1.0)
        assert np.isclose(report.recall, 2 / 3)

    def test_as_dict_includes_extras(self):
        report = segmentation_report(np.ones((2, 2)), np.ones((2, 2)))
        data = report.as_dict()
        assert data["dice"] == 1.0
        assert data["iou"] == 1.0
        assert data["accuracy"] == 1.0
