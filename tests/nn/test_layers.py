"""Unit tests for trainable/structural layers, including gradient checks."""

import numpy as np
import pytest

from repro.nn.dtype import use_dtype
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    UpSample2D,
)


def build(layer, shape, seed=0):
    # Finite-difference gradient checks need float64 parameter resolution;
    # float32-specific behaviour is covered by tests/nn/test_dtype.py.
    with use_dtype("float64"):
        layer.build(shape, np.random.default_rng(seed))
    return layer


def numeric_input_gradient(layer, x, grad_out, eps=1e-6):
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = float(np.sum(layer.forward(x) * grad_out))
        flat_x[i] = original - eps
        minus = float(np.sum(layer.forward(x) * grad_out))
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


def numeric_param_gradient(layer, name, x, grad_out, eps=1e-6):
    param = layer.params[name]
    grad = np.zeros_like(param)
    flat_p = param.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_p.size):
        original = flat_p[i]
        flat_p[i] = original + eps
        plus = float(np.sum(layer.forward(x) * grad_out))
        flat_p[i] = original - eps
        minus = float(np.sum(layer.forward(x) * grad_out))
        flat_p[i] = original
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


class TestPickling:
    def test_scratch_state_dropped_but_behaviour_preserved(self):
        import pickle

        layer = build(Conv2D(filters=3, kernel_size=3), (6, 5, 2))
        x = np.random.default_rng(0).random((4, 6, 5, 2))
        expected = layer.forward(x)
        assert hasattr(layer, "_col_buffer")

        restored = pickle.loads(pickle.dumps(layer))
        assert not hasattr(restored, "_col_buffer"), "scratch must not ship"
        assert not hasattr(restored, "_cache")
        assert np.array_equal(restored.forward(x), expected)

    def test_pickled_size_excludes_activations(self):
        import pickle

        layer = build(Conv2D(filters=8, kernel_size=3), (16, 15, 4))
        bare = len(pickle.dumps(layer))
        layer.forward(np.random.default_rng(0).random((64, 16, 15, 4)))
        assert len(pickle.dumps(layer)) == bare


class TestDense:
    def test_output_shape(self):
        layer = build(Dense(3), (5,))
        out = layer.forward(np.ones((2, 5)))
        assert out.shape == (2, 3)
        assert layer.output_shape((5,)) == (3,)

    def test_parameter_count(self):
        layer = build(Dense(4), (6,))
        assert layer.num_parameters == 6 * 4 + 4

    def test_no_bias(self):
        layer = build(Dense(4, use_bias=False), (6,))
        assert layer.num_parameters == 24

    def test_rejects_non_flat_input(self):
        with pytest.raises(ValueError):
            build(Dense(3), (4, 4))

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            Dense(0)

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(0)
        layer = build(Dense(3), (4,))
        x = rng.normal(size=(5, 4))
        grad_out = rng.normal(size=(5, 3))
        layer.forward(x)
        grad_in = layer.backward(grad_out)
        assert np.allclose(grad_in, numeric_input_gradient(layer, x.copy(), grad_out), atol=1e-5)
        assert np.allclose(
            layer.grads["W"], numeric_param_gradient(layer, "W", x, grad_out), atol=1e-5
        )
        assert np.allclose(
            layer.grads["b"], numeric_param_gradient(layer, "b", x, grad_out), atol=1e-5
        )


class TestConv2D:
    def test_valid_output_shape(self):
        layer = build(Conv2D(filters=8, kernel_size=3), (8, 7, 4))
        assert layer.output_shape((8, 7, 4)) == (6, 5, 8)
        out = layer.forward(np.ones((2, 8, 7, 4)))
        assert out.shape == (2, 6, 5, 8)

    def test_same_padding_keeps_shape(self):
        layer = build(Conv2D(filters=2, kernel_size=3, padding="same"), (6, 5, 1))
        out = layer.forward(np.ones((1, 6, 5, 1)))
        assert out.shape == (1, 6, 5, 2)

    def test_parameter_count(self):
        layer = build(Conv2D(filters=8, kernel_size=3), (8, 7, 4))
        assert layer.num_parameters == 3 * 3 * 4 * 8 + 8

    def test_known_convolution_value(self):
        # A single 2x2 kernel of ones over a constant image sums 4 pixels.
        layer = Conv2D(filters=1, kernel_size=2, kernel_initializer="zeros", use_bias=False)
        build(layer, (3, 3, 1))
        layer.params["W"] = np.ones_like(layer.params["W"])
        out = layer.forward(np.full((1, 3, 3, 1), 2.0))
        assert np.allclose(out, 8.0)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            Conv2D(filters=0)
        with pytest.raises(ValueError):
            Conv2D(filters=2, padding="reflect")
        with pytest.raises(ValueError):
            Conv2D(filters=2, padding="same", stride=2)

    def test_gradients_match_numeric_valid(self):
        rng = np.random.default_rng(1)
        layer = build(Conv2D(filters=2, kernel_size=3), (5, 4, 2))
        x = rng.normal(size=(2, 5, 4, 2))
        grad_out = rng.normal(size=(2, 3, 2, 2))
        layer.forward(x)
        grad_in = layer.backward(grad_out)
        assert np.allclose(grad_in, numeric_input_gradient(layer, x.copy(), grad_out), atol=1e-4)
        assert np.allclose(
            layer.grads["W"], numeric_param_gradient(layer, "W", x, grad_out), atol=1e-4
        )
        assert np.allclose(
            layer.grads["b"], numeric_param_gradient(layer, "b", x, grad_out), atol=1e-4
        )

    def test_gradients_match_numeric_same_padding(self):
        rng = np.random.default_rng(2)
        layer = build(Conv2D(filters=2, kernel_size=3, padding="same"), (4, 4, 1))
        x = rng.normal(size=(1, 4, 4, 1))
        grad_out = rng.normal(size=(1, 4, 4, 2))
        layer.forward(x)
        grad_in = layer.backward(grad_out)
        assert np.allclose(grad_in, numeric_input_gradient(layer, x.copy(), grad_out), atol=1e-4)


class TestMaxPool2D:
    def test_output_shape(self):
        layer = MaxPool2D(pool_size=2)
        assert layer.output_shape((6, 4, 3)) == (3, 2, 3)

    def test_selects_maximum(self):
        layer = MaxPool2D(pool_size=2)
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = layer.forward(x)
        assert np.allclose(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(pool_size=2)
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        layer.forward(x)
        grad = layer.backward(np.ones((1, 2, 2, 1)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.allclose(grad[0, :, :, 0], expected)

    def test_pool_too_large_rejected(self):
        layer = MaxPool2D(pool_size=5)
        with pytest.raises(ValueError):
            layer.output_shape((4, 4, 1))

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        layer = MaxPool2D(pool_size=2)
        x = rng.normal(size=(2, 4, 6, 3))
        grad_out = rng.normal(size=(2, 2, 3, 3))
        layer.forward(x)
        grad_in = layer.backward(grad_out)
        assert np.allclose(grad_in, numeric_input_gradient(layer, x.copy(), grad_out), atol=1e-4)


class TestUpSample2D:
    def test_repeats_pixels(self):
        layer = UpSample2D(factor=2)
        x = np.array([[[[1.0], [2.0]], [[3.0], [4.0]]]])
        out = layer.forward(x)
        assert out.shape == (1, 4, 4, 1)
        assert np.allclose(out[0, :2, :2, 0], 1.0)

    def test_backward_sums_contributions(self):
        layer = UpSample2D(factor=2)
        x = np.ones((1, 2, 2, 1))
        layer.forward(x)
        grad = layer.backward(np.ones((1, 4, 4, 1)))
        assert np.allclose(grad, 4.0)


class TestFlatten:
    def test_round_trip(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4, 1)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert np.allclose(back, x)


class TestDropout:
    def test_inference_is_identity(self):
        layer = Dropout(0.5)
        x = np.ones((4, 10))
        assert np.allclose(layer.forward(x, training=False), x)

    def test_training_zeroes_some_units(self):
        layer = Dropout(0.5)
        layer.seed(0)
        out = layer.forward(np.ones((10, 100)), training=True)
        dropped = np.mean(out == 0.0)
        assert 0.3 < dropped < 0.7

    def test_expected_value_preserved(self):
        layer = Dropout(0.25)
        layer.seed(1)
        out = layer.forward(np.ones((50, 200)), training=True)
        assert 0.9 < out.mean() < 1.1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_training_normalises(self):
        layer = build(BatchNorm(), (8,))
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(64, 8))
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_inference_uses_running_stats(self):
        layer = build(BatchNorm(momentum=0.0), (4,))
        rng = np.random.default_rng(1)
        x = rng.normal(2.0, 1.0, size=(128, 4))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        assert abs(out.mean()) < 0.2

    def test_gradient_matches_numeric(self):
        layer = build(BatchNorm(), (3,))
        rng = np.random.default_rng(2)
        x = rng.normal(size=(6, 3))
        grad_out = rng.normal(size=(6, 3))

        def forward_train(inputs):
            return layer.forward(inputs, training=True)

        layer.forward(x, training=True)
        grad_in = layer.backward(grad_out)

        eps = 1e-6
        numeric = np.zeros_like(x)
        flat_x = x.reshape(-1)
        flat_g = numeric.reshape(-1)
        for i in range(flat_x.size):
            orig = flat_x[i]
            flat_x[i] = orig + eps
            plus = float(np.sum(forward_train(x) * grad_out))
            flat_x[i] = orig - eps
            minus = float(np.sum(forward_train(x) * grad_out))
            flat_x[i] = orig
            flat_g[i] = (plus - minus) / (2 * eps)
        assert np.allclose(grad_in, numeric, atol=1e-4)
