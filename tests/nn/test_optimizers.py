"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Layer
from repro.nn.optimizers import SGD, Adam, Momentum, get_optimizer


class QuadraticLayer(Layer):
    """Toy layer with loss (w - 3)^2 used to test convergence."""

    def __init__(self):
        super().__init__()
        self.params["w"] = np.array([10.0])
        self.grads["w"] = np.zeros(1)

    def compute_grad(self):
        self.grads["w"] = 2.0 * (self.params["w"] - 3.0)


class TestSGD:
    def test_single_step(self):
        layer = QuadraticLayer()
        layer.compute_grad()
        SGD(learning_rate=0.1).step([layer])
        assert np.isclose(layer.params["w"][0], 10.0 - 0.1 * 14.0)

    def test_converges_to_minimum(self):
        layer = QuadraticLayer()
        opt = SGD(learning_rate=0.1)
        for _ in range(100):
            layer.compute_grad()
            opt.step([layer])
        assert abs(layer.params["w"][0] - 3.0) < 1e-3

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)


class TestMomentum:
    def test_converges_to_minimum(self):
        layer = QuadraticLayer()
        opt = Momentum(learning_rate=0.05, momentum=0.9)
        for _ in range(200):
            layer.compute_grad()
            opt.step([layer])
        assert abs(layer.params["w"][0] - 3.0) < 1e-2

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(momentum=1.0)


class TestAdam:
    def test_converges_to_minimum(self):
        layer = QuadraticLayer()
        opt = Adam(learning_rate=0.3)
        for _ in range(300):
            layer.compute_grad()
            opt.step([layer])
        assert abs(layer.params["w"][0] - 3.0) < 1e-2

    def test_bias_correction_first_step(self):
        # With bias correction the very first Adam step is ~learning_rate.
        layer = QuadraticLayer()
        opt = Adam(learning_rate=0.1)
        layer.compute_grad()
        opt.step([layer])
        assert np.isclose(layer.params["w"][0], 10.0 - 0.1, atol=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)


class TestClipping:
    def test_clip_norm_limits_update(self):
        layer = QuadraticLayer()
        layer.grads["w"] = np.array([1000.0])
        SGD(learning_rate=1.0, clip_norm=1.0).step([layer])
        assert np.isclose(layer.params["w"][0], 9.0)

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            SGD(clip_norm=0.0)


class TestStateIsolation:
    def test_adam_keeps_state_per_parameter(self):
        rng = np.random.default_rng(0)
        layer_a = Dense(2)
        layer_b = Dense(2)
        layer_a.build((3,), rng)
        layer_b.build((3,), rng)
        layer_a.grads["W"] = np.ones_like(layer_a.params["W"])
        layer_b.grads["W"] = np.ones_like(layer_b.params["W"])
        layer_a.grads["b"] = np.ones_like(layer_a.params["b"])
        layer_b.grads["b"] = np.ones_like(layer_b.params["b"])
        opt = Adam(learning_rate=0.1)
        before_b = layer_b.params["W"].copy()
        opt.step([layer_a, layer_b])
        # Both layers were updated, with independent state entries.
        assert not np.allclose(layer_b.params["W"], before_b)
        assert len(opt._m) == 4


class TestRegistry:
    def test_lookup_with_kwargs(self):
        opt = get_optimizer("adam", learning_rate=0.05)
        assert isinstance(opt, Adam)
        assert opt.learning_rate == 0.05

    def test_instance_passthrough(self):
        opt = SGD()
        assert get_optimizer(opt) is opt

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_optimizer("rmsprop-ish")
