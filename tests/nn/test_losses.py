"""Unit tests for loss functions (values and gradients)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.nn.losses import (
    BinaryCrossEntropy,
    DiceLoss,
    MeanSquaredError,
    combined_bce_dice,
    get_loss,
)


def numeric_gradient(loss, predictions, targets, eps=1e-6):
    grad = np.zeros_like(predictions)
    flat_p = predictions.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_p.size):
        orig = flat_p[i]
        flat_p[i] = orig + eps
        plus = loss.forward(predictions, targets)
        flat_p[i] = orig - eps
        minus = loss.forward(predictions, targets)
        flat_p[i] = orig
        flat_g[i] = (plus - minus) / (2 * eps)
    return grad


class TestMeanSquaredError:
    def test_zero_for_perfect_prediction(self):
        loss = MeanSquaredError()
        x = np.array([[1.0, 2.0]])
        assert loss.forward(x, x) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        assert np.isclose(loss.forward(np.array([2.0]), np.array([0.0])), 4.0)

    def test_gradient(self):
        loss = MeanSquaredError()
        rng = np.random.default_rng(0)
        p = rng.normal(size=(4, 3))
        t = rng.normal(size=(4, 3))
        assert np.allclose(loss.backward(p, t), numeric_gradient(loss, p.copy(), t), atol=1e-5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MeanSquaredError().forward(np.zeros((2, 2)), np.zeros((2, 3)))


class TestBinaryCrossEntropy:
    def test_low_loss_for_confident_correct(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([0.99, 0.01]), np.array([1.0, 0.0]))
        assert value < 0.05

    def test_high_loss_for_confident_wrong(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([0.01]), np.array([1.0]))
        assert value > 2.0

    def test_handles_extreme_probabilities(self):
        loss = BinaryCrossEntropy()
        value = loss.forward(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(value)

    def test_gradient(self):
        loss = BinaryCrossEntropy()
        rng = np.random.default_rng(1)
        p = rng.uniform(0.05, 0.95, size=(5, 2))
        t = rng.integers(0, 2, size=(5, 2)).astype(float)
        assert np.allclose(loss.backward(p, t), numeric_gradient(loss, p.copy(), t), atol=1e-4)


class TestDiceLoss:
    def test_zero_for_identical_masks(self):
        loss = DiceLoss(smooth=1e-6)
        mask = np.ones((2, 4, 4, 1))
        assert loss.forward(mask, mask) < 1e-5

    def test_high_for_disjoint_masks(self):
        loss = DiceLoss(smooth=1e-6)
        pred = np.zeros((1, 4, 4, 1))
        pred[0, :2] = 1.0
        target = np.zeros((1, 4, 4, 1))
        target[0, 2:] = 1.0
        assert loss.forward(pred, target) > 0.99

    def test_gradient(self):
        loss = DiceLoss()
        rng = np.random.default_rng(2)
        p = rng.uniform(0.1, 0.9, size=(2, 3, 3, 1))
        t = rng.integers(0, 2, size=(2, 3, 3, 1)).astype(float)
        assert np.allclose(loss.backward(p, t), numeric_gradient(loss, p.copy(), t), atol=1e-4)

    def test_invalid_smooth(self):
        with pytest.raises(ValueError):
            DiceLoss(smooth=0.0)

    @given(
        masks=npst.arrays(
            dtype=np.float64,
            shape=(2, 3, 3),
            elements=st.floats(0.0, 1.0),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_loss_bounded_between_zero_and_one(self, masks):
        loss = DiceLoss()
        targets = (masks > 0.5).astype(float)
        value = loss.forward(masks, targets)
        assert -1e-9 <= value <= 1.0 + 1e-9


class TestCombinedLoss:
    def test_is_weighted_sum(self):
        rng = np.random.default_rng(3)
        p = rng.uniform(0.1, 0.9, size=(2, 4))
        t = rng.integers(0, 2, size=(2, 4)).astype(float)
        combined = combined_bce_dice(bce_weight=0.3, dice_weight=0.7)
        expected = 0.3 * BinaryCrossEntropy().forward(p, t) + 0.7 * DiceLoss().forward(p, t)
        assert np.isclose(combined.forward(p, t), expected)

    def test_gradient(self):
        combined = combined_bce_dice()
        rng = np.random.default_rng(4)
        p = rng.uniform(0.2, 0.8, size=(3, 4))
        t = rng.integers(0, 2, size=(3, 4)).astype(float)
        assert np.allclose(
            combined.backward(p, t), numeric_gradient(combined, p.copy(), t), atol=1e-4
        )

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            combined_bce_dice(bce_weight=0.0, dice_weight=0.0)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_loss("bce"), BinaryCrossEntropy)
        assert isinstance(get_loss("dice"), DiceLoss)
        assert isinstance(get_loss("mse"), MeanSquaredError)

    def test_instance_passthrough(self):
        loss = DiceLoss()
        assert get_loss(loss) is loss

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_loss("hinge-ish")
