"""Unit tests for weight initializers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.initializers import (
    Constant,
    GlorotUniform,
    HeNormal,
    RandomNormal,
    Zeros,
    _fan_in_fan_out,
    get_initializer,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestFanInFanOut:
    def test_dense_shape(self):
        assert _fan_in_fan_out((10, 5)) == (10, 5)

    def test_conv_shape(self):
        # 3x3 kernel, 4 input channels, 8 filters.
        assert _fan_in_fan_out((3, 3, 4, 8)) == (36, 72)

    def test_bias_shape(self):
        assert _fan_in_fan_out((7,)) == (7, 7)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            _fan_in_fan_out(())


class TestZerosAndConstant:
    def test_zeros(self, rng):
        out = Zeros()((3, 4), rng)
        assert out.shape == (3, 4)
        assert np.all(out == 0.0)

    def test_constant(self, rng):
        out = Constant(2.5)((2, 2), rng)
        assert np.all(out == 2.5)


class TestRandomNormal:
    def test_shape_and_spread(self, rng):
        out = RandomNormal(stddev=0.5)((1000,), rng)
        assert out.shape == (1000,)
        assert 0.3 < out.std() < 0.7

    def test_negative_stddev_rejected(self):
        with pytest.raises(ValueError):
            RandomNormal(stddev=-1.0)


class TestGlorotAndHe:
    def test_glorot_bounds(self, rng):
        shape = (100, 50)
        out = GlorotUniform()(shape, rng)
        limit = np.sqrt(6.0 / (100 + 50))
        assert np.all(np.abs(out) <= limit)

    def test_he_scale(self, rng):
        out = HeNormal()((200, 100), rng)
        expected_std = np.sqrt(2.0 / 200)
        assert 0.7 * expected_std < out.std() < 1.3 * expected_std

    @given(rows=st.integers(2, 30), cols=st.integers(2, 30))
    @settings(max_examples=25, deadline=None)
    def test_glorot_always_within_limit(self, rows, cols):
        rng = np.random.default_rng(7)
        out = GlorotUniform()((rows, cols), rng)
        limit = np.sqrt(6.0 / (rows + cols))
        assert np.all(np.abs(out) <= limit + 1e-12)


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_initializer("he_normal"), HeNormal)
        assert isinstance(get_initializer("glorot_uniform"), GlorotUniform)

    def test_passthrough_instance(self):
        init = Constant(1.0)
        assert get_initializer(init) is init

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_initializer("not_a_real_initializer")
