"""The float32 fast path: dtype plumbing and decision equivalence.

The documented tolerance of the float32 substrate: raw probabilities of a
weight-equivalent model agree with the float64 reference to ~1e-5, and every
*decision* (thresholded detector output, binarized segmentation mask) is
bit-identical on the test fixtures.
"""

import numpy as np
import pytest

from repro.core.detector import build_detector_model
from repro.core.localizer import build_localizer_model
from repro.nn.dtype import default_dtype, resolve_dtype, set_default_dtype, use_dtype
from repro.nn.layers import Conv2D
from repro.nn.model import Sequential
from repro.nn.serialization import load_model, save_model
from repro.nn.training import Trainer


class TestDtypeControls:
    def test_default_is_float32(self):
        assert default_dtype() == np.float32

    def test_use_dtype_restores(self):
        before = default_dtype()
        with use_dtype("float64") as dtype:
            assert dtype == np.float64
            assert default_dtype() == np.float64
        assert default_dtype() == before

    def test_set_and_resolve(self):
        previous = default_dtype()
        try:
            assert set_default_dtype(np.float64) == np.float64
            assert default_dtype() == np.float64
        finally:
            set_default_dtype(previous)

    def test_resolve_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype("float16")
        with pytest.raises(ValueError):
            resolve_dtype(np.int32)

    def test_use_dtype_restores_on_exception(self):
        before = default_dtype()
        with pytest.raises(RuntimeError):
            with use_dtype("float64"):
                raise RuntimeError("boom")
        assert default_dtype() == before


class TestModelDtype:
    def test_build_captures_default(self):
        with use_dtype("float32"):
            model = build_detector_model((8, 7, 4), seed=0)
        assert model.dtype == np.float32
        for layer in model.layers:
            for value in layer.params.values():
                assert value.dtype == np.float32

    def test_forward_output_dtype_follows_model(self):
        x = np.random.default_rng(0).random((3, 8, 7, 4))  # float64 input
        with use_dtype("float32"):
            model = build_detector_model((8, 7, 4), seed=0)
        assert model.predict(x).dtype == np.float32
        with use_dtype("float64"):
            model64 = build_detector_model((8, 7, 4), seed=0)
        assert model64.predict(x).dtype == np.float64

    def test_model_dtype_survives_global_change(self):
        with use_dtype("float32"):
            model = build_detector_model((8, 7, 4), seed=0)
        with use_dtype("float64"):
            out = model.predict(np.zeros((1, 8, 7, 4)))
        assert out.dtype == np.float32

    def test_serialization_round_trips_dtype(self, tmp_path):
        with use_dtype("float32"):
            model = build_detector_model((8, 7, 4), seed=0)
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)
        assert loaded.dtype == np.float32
        for la, lb in zip(model.layers, loaded.layers):
            for name in la.params:
                assert la.params[name].dtype == lb.params[name].dtype
                assert np.array_equal(la.params[name], lb.params[name])


def _weight_equivalent_pair(builder, shape):
    """The same architecture in float64 and float32 with identical weights."""
    with use_dtype("float64"):
        reference = builder(shape, seed=5)
    with use_dtype("float32"):
        fast = builder(shape, seed=5)
    fast.set_weights(reference.get_weights())  # cast float64 -> float32
    return reference, fast


class TestDecisionEquivalence:
    def test_detector_decisions_bit_identical(self, small_detection_dataset):
        shape = small_detection_dataset.inputs.shape[1:]
        reference, fast = _weight_equivalent_pair(build_detector_model, shape)
        # Train the float64 reference briefly so weights are non-trivial...
        trainer = Trainer(reference, loss="bce", seed=0)
        trainer.fit(
            small_detection_dataset.inputs,
            small_detection_dataset.labels,
            epochs=5,
            batch_size=16,
        )
        fast.set_weights(reference.get_weights())
        p64 = reference.predict(small_detection_dataset.inputs).reshape(-1)
        p32 = fast.predict(small_detection_dataset.inputs).reshape(-1)
        assert np.allclose(p64, p32, atol=1e-5)
        assert np.array_equal(p64 >= 0.5, p32 >= 0.5)

    def test_localizer_masks_bit_identical(self, small_localization_dataset):
        shape = small_localization_dataset.inputs.shape[1:]
        reference, fast = _weight_equivalent_pair(build_localizer_model, shape)
        m64 = reference.predict(small_localization_dataset.inputs)
        m32 = fast.predict(small_localization_dataset.inputs)
        assert np.allclose(m64, m32, atol=1e-5)
        assert np.array_equal(m64 >= 0.5, m32 >= 0.5)


class TestIm2colBufferReuse:
    def test_buffer_reused_across_same_shape_batches(self):
        layer = Conv2D(filters=4, kernel_size=3)
        with use_dtype("float32"):
            layer.build((8, 7, 2), np.random.default_rng(0))
        rng = np.random.default_rng(1)
        x = rng.random((16, 8, 7, 2), dtype=np.float32)
        layer.forward(x)
        first_buffer = layer._col_buffer
        layer.forward(rng.random((16, 8, 7, 2), dtype=np.float32))
        assert layer._col_buffer is first_buffer

    def test_varying_batch_sizes_stay_correct(self):
        """A shrinking last minibatch reuses the larger buffer correctly."""
        with use_dtype("float32"):
            reused = Conv2D(filters=3, kernel_size=3)
            reused.build((6, 5, 2), np.random.default_rng(0))
        rng = np.random.default_rng(2)
        big = rng.random((8, 6, 5, 2), dtype=np.float32)
        small = rng.random((3, 6, 5, 2), dtype=np.float32)
        out_big_first = reused.forward(big).copy()
        out_small = reused.forward(small).copy()

        with use_dtype("float32"):
            fresh = Conv2D(filters=3, kernel_size=3)
            fresh.build((6, 5, 2), np.random.default_rng(0))
        assert np.array_equal(out_small, fresh.forward(small))
        assert np.array_equal(out_big_first, fresh.forward(big))

    def test_training_predictions_match_across_dtypes_loosely(self):
        """Sanity: float32 training stays numerically close to float64."""
        rng = np.random.default_rng(0)
        x = rng.random((32, 6, 5, 2))
        y = (rng.random((32, 1)) > 0.5).astype(float)

        def train(dtype):
            with use_dtype(dtype):
                from repro.nn.activations import ReLU, Sigmoid
                from repro.nn.layers import Dense, Flatten

                model = Sequential(
                    [Conv2D(4, 3), ReLU(), Flatten(), Dense(1), Sigmoid()], seed=7
                )
                model.build((6, 5, 2))
            Trainer(model, loss="bce", seed=7).fit(x, y, epochs=3, batch_size=8)
            return model.predict(x).reshape(-1)

        p64 = train("float64")
        p32 = train("float32")
        assert np.allclose(p64, p32, atol=1e-3)
