"""Unit tests for the Sequential model container."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.activations import ReLU, Sigmoid
from repro.nn.model import Sequential


def detector_like_model(seed=0):
    """The DL2Fence detector architecture at a small frame size."""
    return Sequential(
        [
            Conv2D(filters=8, kernel_size=3),
            ReLU(),
            MaxPool2D(pool_size=2),
            Flatten(),
            Dense(1),
            Sigmoid(),
        ],
        seed=seed,
    )


class TestBuild:
    def test_build_propagates_shapes(self):
        model = detector_like_model().build((8, 7, 4))
        assert model.output_shape == (1,)

    def test_forward_auto_builds(self):
        model = detector_like_model()
        out = model.forward(np.zeros((2, 8, 7, 4)))
        assert out.shape == (2, 1)
        assert model.input_shape == (8, 7, 4)

    def test_add_after_build_rejected(self):
        model = detector_like_model().build((8, 7, 4))
        with pytest.raises(RuntimeError):
            model.add(Dense(2))

    def test_shape_mismatch_rejected(self):
        model = detector_like_model().build((8, 7, 4))
        with pytest.raises(ValueError):
            model.forward(np.zeros((2, 6, 5, 4)))


class TestForwardBackward:
    def test_output_in_sigmoid_range(self):
        model = detector_like_model().build((8, 7, 4))
        out = model.forward(np.random.default_rng(0).normal(size=(4, 8, 7, 4)))
        assert np.all((out > 0.0) & (out < 1.0))

    def test_backward_populates_gradients(self):
        model = detector_like_model().build((8, 7, 4))
        x = np.random.default_rng(0).normal(size=(3, 8, 7, 4))
        out = model.forward(x, training=True)
        model.backward(np.ones_like(out))
        dense = model.layers[4]
        assert "W" in dense.grads
        assert dense.grads["W"].shape == dense.params["W"].shape

    def test_determinism_same_seed(self):
        x = np.random.default_rng(1).normal(size=(2, 8, 7, 4))
        out_a = detector_like_model(seed=5).build((8, 7, 4)).forward(x)
        out_b = detector_like_model(seed=5).build((8, 7, 4)).forward(x)
        assert np.allclose(out_a, out_b)

    def test_different_seeds_differ(self):
        x = np.random.default_rng(1).normal(size=(2, 8, 7, 4))
        out_a = detector_like_model(seed=1).build((8, 7, 4)).forward(x)
        out_b = detector_like_model(seed=2).build((8, 7, 4)).forward(x)
        assert not np.allclose(out_a, out_b)


class TestPredict:
    def test_batched_predict_matches_forward(self):
        model = detector_like_model().build((8, 7, 4))
        x = np.random.default_rng(2).normal(size=(10, 8, 7, 4))
        assert np.allclose(model.predict(x, batch_size=3), model.forward(x))

    def test_empty_batch(self):
        model = detector_like_model().build((8, 7, 4))
        out = model.predict(np.zeros((0, 8, 7, 4)))
        assert out.shape == (0, 1)


class TestWeights:
    def test_get_set_round_trip(self):
        model_a = detector_like_model(seed=1).build((8, 7, 4))
        model_b = detector_like_model(seed=2).build((8, 7, 4))
        model_b.set_weights(model_a.get_weights())
        x = np.random.default_rng(3).normal(size=(2, 8, 7, 4))
        assert np.allclose(model_a.forward(x), model_b.forward(x))

    def test_set_weights_shape_check(self):
        model = detector_like_model().build((8, 7, 4))
        weights = model.get_weights()
        weights[0]["W"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_set_weights_layer_count_check(self):
        model = detector_like_model().build((8, 7, 4))
        with pytest.raises(ValueError):
            model.set_weights([])


class TestIntrospection:
    def test_num_parameters(self):
        model = detector_like_model().build((8, 7, 4))
        conv_params = 3 * 3 * 4 * 8 + 8
        dense_params = (3 * 2 * 8) * 1 + 1
        assert model.num_parameters == conv_params + dense_params

    def test_summary_contains_layers(self):
        model = detector_like_model().build((8, 7, 4))
        text = model.summary()
        assert "Conv2D" in text
        assert "Total parameters" in text

    def test_summary_requires_build(self):
        with pytest.raises(RuntimeError):
            detector_like_model().summary()
