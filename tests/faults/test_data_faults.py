"""Data-plane fault models and their mid-episode activation path.

Pins the declarative layer (:class:`DeadLinkFault` / :class:`DeadRouterFault`
— frozen, hashable, library-registered, cache-key safe), the canonical
``link_faults`` scenario of the chaos suite, and the simulator-side
scheduling machinery on both the solo and the episode-batched backend.
"""

import pytest

from repro.faults import (
    FAULT_LIBRARY,
    DeadLinkFault,
    DeadRouterFault,
    FaultScenario,
    dead_link_for,
    default_fault_suite,
)
from repro.noc.batch_sim import BatchedNoCSimulator
from repro.noc.route_provider import RouteProvider
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.synthetic import UniformRandomTraffic


class TestFaultModels:
    def test_models_are_frozen_and_hashable(self):
        link = DeadLinkFault(node=5, direction=Direction.NORTH, start_cycle=100)
        router = DeadRouterFault(node=9, start_cycle=50)
        assert hash(link) == hash(
            DeadLinkFault(node=5, direction=Direction.NORTH, start_cycle=100)
        )
        assert link != DeadLinkFault(node=5, direction=Direction.EAST)
        assert hash(router)
        with pytest.raises(Exception):
            link.node = 6

    def test_registered_in_library(self):
        assert FAULT_LIBRARY["dead-link"] is DeadLinkFault
        assert FAULT_LIBRARY["dead-router"] is DeadRouterFault

    def test_describe_names_the_resource(self):
        link = DeadLinkFault(node=5, direction=Direction.NORTH, start_cycle=100)
        assert "5" in link.describe() and "100" in link.describe()
        assert "7" in DeadRouterFault(node=7).describe()

    def test_affected_nodes_covers_endpoints_and_detour_carriers(self):
        """The chaos gates charge collateral against ``affected_nodes``, so
        it must name everything the fault physically touches: both link
        endpoints plus every detour carrier of the recomputed routes."""
        topology = MeshTopology(rows=6)
        node = dead_link_for(topology)
        fault = DeadLinkFault(node=node, direction=Direction.NORTH)
        affected = fault.affected_nodes(topology)
        neighbor = topology.neighbor(node, Direction.NORTH)
        assert node in affected and neighbor in affected
        provider = RouteProvider(topology, dead_links=((node, Direction.NORTH),))
        assert provider.detour_nodes <= affected

    def test_dead_router_affected_nodes(self):
        topology = MeshTopology(rows=5)
        fault = DeadRouterFault(node=12)
        affected = fault.affected_nodes(topology)
        assert 12 in affected
        provider = RouteProvider(topology, dead_routers=(12,))
        assert provider.detour_nodes <= affected

    def test_canonical_dead_link_placement(self):
        """``dead_link_for`` stays off the attack rows/columns at any scale
        and clamps into the mesh on tiny ones."""
        for rows in (3, 4, 8, 16):
            topology = MeshTopology(rows=rows)
            node = dead_link_for(topology)
            x, y = topology.coordinates(node)
            assert x == min(2, topology.columns - 1)
            assert y == min(2, max(rows - 2, 0))
            # The NORTH link out of it must exist (it is the canonical kill).
            assert topology.neighbor(node, Direction.NORTH) is not None


class TestLinkFaultScenario:
    def test_suite_contains_link_faults(self):
        topology = MeshTopology(rows=8)
        suite = default_fault_suite(topology, link_kill_cycle=512)
        scenario = suite["link_faults"]
        assert scenario.data_faults
        fault = scenario.data_faults[0]
        assert isinstance(fault, DeadLinkFault)
        assert fault.node == dead_link_for(topology)
        assert fault.start_cycle == 512
        assert fault.affected_nodes(topology) <= scenario.affected_nodes(topology)
        assert "link" in scenario.describe()

    def test_scenario_is_cache_hashable(self):
        topology = MeshTopology(rows=4)
        scenario = default_fault_suite(topology, link_kill_cycle=64)["link_faults"]
        assert hash(scenario.data_faults)
        assert scenario.data_faults == default_fault_suite(
            topology, link_kill_cycle=64
        )["link_faults"].data_faults


def _loaded_simulator(rows=4, seed=3, backend="soa"):
    simulator = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=0, seed=seed, backend=backend)
    )
    simulator.add_source(
        UniformRandomTraffic(simulator.topology, injection_rate=0.1, seed=seed + 1)
    )
    return simulator


class TestSimulatorScheduling:
    @pytest.mark.parametrize("backend", ("soa", "object"))
    def test_scheduled_fault_activates_at_cycle(self, backend):
        simulator = _loaded_simulator(backend=backend)
        node = dead_link_for(simulator.topology)
        simulator.schedule_data_fault(150, dead_links=((node, Direction.NORTH),))
        simulator.run(149)
        assert simulator.route_provider is None
        simulator.run(151)
        provider = simulator.route_provider
        assert provider is not None
        assert not provider.link_is_live(node, Direction.NORTH)
        assert (node, Direction.NORTH) in simulator.dead_links

    def test_scenario_schedules_through_fault_scenario(self):
        simulator = _loaded_simulator()
        scenario = default_fault_suite(simulator.topology, link_kill_cycle=100)[
            "link_faults"
        ]
        scenario.schedule_data_faults(simulator)
        simulator.run(200)
        assert simulator.route_provider is not None
        assert simulator.route_provider.detour_nodes

    def test_past_cycle_rejected(self):
        simulator = _loaded_simulator()
        simulator.run(50)
        with pytest.raises(ValueError):
            simulator.schedule_data_fault(10, dead_links=((0, Direction.EAST),))

    def test_faults_accumulate_across_activations(self):
        simulator = _loaded_simulator(rows=5)
        topology = simulator.topology
        first = (topology.node_id(2, 2), Direction.NORTH)
        simulator.schedule_data_fault(100, dead_links=(first,))
        simulator.schedule_data_fault(200, dead_routers=(topology.node_id(1, 3),))
        simulator.run(300)
        provider = simulator.route_provider
        assert first in simulator.dead_links
        assert topology.node_id(1, 3) in simulator.dead_routers
        assert provider.dead_routers == {topology.node_id(1, 3)}
        assert not provider.link_is_live(*first)

    def test_mid_episode_kill_drops_unroutable_traffic(self):
        """A dead router strands west-first-unreachable pairs; the backend
        must account for them (killed in flight or dropped at source), not
        wedge."""
        simulator = _loaded_simulator(rows=5, seed=11)
        simulator.schedule_data_fault(
            120, dead_routers=(simulator.topology.node_id(2, 2),)
        )
        simulator.run(600)
        network = simulator.network
        assert network.unroutable_packets > 0
        assert simulator.stats.packets_delivered > 0

    def test_batched_lanes_share_the_fault(self):
        batched = BatchedNoCSimulator(
            SimulationConfig(rows=4, warmup_cycles=0, seed=7), episodes=2
        )
        for index in range(2):
            lane = batched.lane(index)
            lane.add_source(
                UniformRandomTraffic(
                    lane.topology, injection_rate=0.1, seed=20 + index
                )
            )
        node = dead_link_for(batched.topology)
        batched.schedule_data_fault(100, dead_links=((node, Direction.NORTH),))
        batched.run(90)
        assert batched.route_provider is None
        batched.run(200)
        assert batched.route_provider is not None
        for index in range(2):
            provider = batched.lane(index).network.route_provider
            assert provider is not None
            assert not provider.link_is_live(node, Direction.NORTH)
