"""Runtime-plane chaos: worker crashes/hangs and cache-entry corruption.

The headline regression here is bit-identical self-healing: a
:class:`ParallelRunner` whose workers crash or hang (via
:class:`WorkerChaosFault`) must return exactly the result of a fault-free
serial run — these tests fail on a retry-free runner by construction (the
resilience parameters they use do not exist there).
"""

import json

import numpy as np
import pytest

from repro.faults import CacheCorruptionFault, InjectedWorkerCrash, WorkerChaosFault
from repro.runtime.cache import ArtifactCache
from repro.runtime.parallel import (
    ArrayBundle,
    ParallelRunner,
    configured_task_retries,
    configured_task_timeout,
)


def _square(task):
    return task * task


def _bundle(task):
    rng = np.random.default_rng(task)
    return ArrayBundle(meta={"task": task}, arrays={"values": rng.random(64)})


def _boom(task):
    raise ValueError(f"task {task} failed deterministically")


class TestEnvKnobs:
    def test_timeout_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert configured_task_timeout() is None

    def test_timeout_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        assert configured_task_timeout() == 2.5
        assert ParallelRunner(workers=2).task_timeout == 2.5

    def test_timeout_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert configured_task_timeout() is None

    def test_timeout_invalid_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.raises(ValueError):
            configured_task_timeout()

    def test_retries_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_RETRIES", raising=False)
        assert configured_task_retries() == 2

    def test_retries_parse_and_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_RETRIES", "5")
        assert configured_task_retries() == 5
        monkeypatch.setenv("REPRO_TASK_RETRIES", "-3")
        assert configured_task_retries() == 0

    def test_runner_without_faults_is_not_resilient(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert not ParallelRunner(workers=2).resilient
        assert ParallelRunner(workers=2, task_timeout=1.0).resilient
        assert ParallelRunner(workers=2, fault=WorkerChaosFault()).resilient


class TestWorkerChaosFault:
    def test_draws_are_deterministic(self):
        fault = WorkerChaosFault(crash_probability=0.4, seed=9)
        draws = [fault._draw(index, 0) for index in range(32)]
        assert draws == [fault._draw(index, 0) for index in range(32)]

    def test_retry_rerolls(self):
        fault = WorkerChaosFault(crash_probability=0.4, seed=9)
        assert [fault._draw(3, attempt) for attempt in range(8)] != [
            fault._draw(3, 0)
        ] * 8

    def test_enter_crash_raises(self):
        fault = WorkerChaosFault(crash_probability=1.0, seed=0)
        with pytest.raises(InjectedWorkerCrash):
            fault.before_task(0, 0)
        assert fault.after_task(0, 0) is False

    def test_exit_crash_flagged(self):
        fault = WorkerChaosFault(crash_probability=1.0, crash_point="exit", seed=0)
        fault.before_task(0, 0)  # enter passes
        assert fault.after_task(0, 0) is True

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            WorkerChaosFault(crash_probability=0.8, hang_probability=0.4)


class TestResilientRunner:
    def test_crashes_heal_to_bit_identical_results(self):
        """Acceptance gate: crash probability >= 0.3, result == serial."""
        serial = [_square(task) for task in range(12)]
        fault = WorkerChaosFault(crash_probability=0.5, seed=17)
        runner = ParallelRunner(
            workers=3, task_timeout=30.0, task_retries=3, fault=fault
        )
        assert runner.map(_square, range(12)) == serial

    def test_exit_crashes_heal_too(self):
        serial = [_square(task) for task in range(12)]
        fault = WorkerChaosFault(crash_probability=0.5, crash_point="exit", seed=23)
        runner = ParallelRunner(
            workers=3, task_timeout=30.0, task_retries=3, fault=fault
        )
        assert runner.map(_square, range(12)) == serial

    def test_hangs_time_out_and_heal(self):
        serial = [_square(task) for task in range(8)]
        fault = WorkerChaosFault(
            hang_probability=0.4, hang_seconds=60.0, seed=29
        )
        runner = ParallelRunner(
            workers=2, task_timeout=0.5, task_retries=1, fault=fault
        )
        assert runner.map(_square, range(8)) == serial

    def test_total_crash_falls_back_to_serial(self):
        serial = [_square(task) for task in range(6)]
        fault = WorkerChaosFault(crash_probability=1.0, seed=1)
        runner = ParallelRunner(
            workers=2, task_timeout=10.0, task_retries=1, fault=fault
        )
        assert runner.map(_square, range(6)) == serial

    def test_map_arrays_heals_bit_identically(self):
        serial = [_bundle(task) for task in range(8)]
        fault = WorkerChaosFault(crash_probability=0.5, seed=31)
        runner = ParallelRunner(
            workers=3, task_timeout=30.0, task_retries=3, fault=fault
        )
        healed = runner.map_arrays(_bundle, range(8))
        for expected, got in zip(serial, healed):
            assert expected.meta == got.meta
            assert np.array_equal(expected.arrays["values"], got.arrays["values"])

    def test_map_arrays_exit_crash_does_not_strand_segments(self):
        fault = WorkerChaosFault(crash_probability=0.6, crash_point="exit", seed=37)
        runner = ParallelRunner(
            workers=3, task_timeout=30.0, task_retries=2, fault=fault
        )
        healed = runner.map_arrays(_bundle, range(8))
        assert [bundle.meta["task"] for bundle in healed] == list(range(8))

    def test_deterministic_task_error_still_raises(self):
        runner = ParallelRunner(
            workers=2, task_timeout=10.0, task_retries=1
        )
        with pytest.raises(ValueError, match="deterministically"):
            runner.map(_boom, range(4))


class TestCacheCorruptionFault:
    def _seed_cache(self, tmp_path, entries=6):
        cache = ArtifactCache(root=tmp_path / "cache", enabled=True)
        paths = []
        for index in range(entries):
            paths.append(
                cache.store(
                    "chaos-test",
                    {"index": index},
                    lambda d, index=index: (d / "data.json").write_text(
                        json.dumps({"value": index, "pad": "x" * 256})
                    ),
                )
            )
        return cache, paths

    @staticmethod
    def _load(directory):
        return json.loads((directory / "data.json").read_text())["value"]

    def test_apply_is_deterministic(self, tmp_path):
        cache, _ = self._seed_cache(tmp_path)
        fault = CacheCorruptionFault(entry_probability=0.5, seed=3)
        first = [p.name for p in fault.apply(cache.root)]
        # Re-seeding an identical cache elsewhere damages the same entries.
        cache2, _ = self._seed_cache(tmp_path / "again")
        second = [p.name for p in fault.apply(cache2.root)]
        assert first == second
        assert first  # something was damaged at p=0.5 over 6 entries

    def test_damaged_entries_quarantined_and_rebuilt(self, tmp_path):
        cache, _ = self._seed_cache(tmp_path)
        fault = CacheCorruptionFault(entry_probability=1.0, seed=5)
        damaged = fault.apply(cache.root)
        assert len(damaged) == 6
        for index in range(6):
            with pytest.warns(RuntimeWarning, match="quarantined|corrupt"):
                value = cache.get_or_build(
                    "chaos-test",
                    {"index": index},
                    build=lambda index=index: index,
                    save=lambda value, d: (d / "data.json").write_text(
                        json.dumps({"value": value, "pad": "x" * 256})
                    ),
                    load=self._load,
                )
            assert value == index
        assert cache.stats.quarantined == 6
        assert cache.stats.invalid == 6
        quarantine = cache.root / ".quarantine"
        assert quarantine.is_dir()
        assert len(list(quarantine.iterdir())) == 6
        # Rebuilt entries load cleanly afterwards.
        for index in range(6):
            assert (
                cache.fetch("chaos-test", {"index": index}, self._load) == index
            )

    def test_quarantine_excluded_from_size_accounting(self, tmp_path):
        cache, _ = self._seed_cache(tmp_path)
        before = cache.total_bytes()
        CacheCorruptionFault(entry_probability=1.0, seed=5).apply(cache.root)
        with pytest.warns(RuntimeWarning):
            cache.fetch("chaos-test", {"index": 0}, self._load)
        assert cache.total_bytes() < before

    def test_quarantine_is_capped(self, tmp_path):
        from repro.runtime.cache import _QUARANTINE_KEEP

        cache, _ = self._seed_cache(tmp_path, entries=_QUARANTINE_KEEP + 4)
        CacheCorruptionFault(entry_probability=1.0, seed=5).apply(cache.root)
        for index in range(_QUARANTINE_KEEP + 4):
            with pytest.warns(RuntimeWarning):
                cache.fetch("chaos-test", {"index": index}, self._load)
        specimens = list((cache.root / ".quarantine").iterdir())
        assert len(specimens) <= _QUARANTINE_KEEP
