"""Benign-faults property: faults alone never cause engagements/convictions.

The subsystem-level invariant this file pins (an ISSUE acceptance item):
**every fault scenario in the library, run with no attack, produces zero
engagements and zero convictions** — across 4x4 through 16x16 meshes and
under both simulator backends.  A fault is noise to be survived, never
evidence of hostility.

Two layers of coverage:

* a plausibility-stub fence (fires only on physically impossible cell
  values — exactly what :class:`CorruptedFrameFault` writes) sweeps every
  mesh size and both backends cheaply; a ``degraded=False`` leg proves the
  stub *does* fire without the sanitizer, so the property is not vacuous;
* the session's real trained pipeline replays every scenario on the small
  mesh under both backends, confirming the learned detector stays quiet on
  benign-but-faulted telemetry too.

A final stream regression pins that a faulted monitor stream is
bit-identical across backends: the fault plane applies post-capture, so the
fingerprint-pinned backends must feed consumers the same degraded windows.
"""

import numpy as np
import pytest

from repro.core.pipeline import LocalizationResult
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.faults import dead_link_for, default_fault_suite, node_port_cells
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction
from repro.traffic.synthetic import UniformRandomTraffic

SCENARIO_NAMES = (
    "none",
    "dropout",
    "silent",
    "dropout_silent",
    "stuck",
    "corrupt",
    "delay",
    "link_faults",
)
BACKENDS = ("soa", "object")


class PlausibilityFence:
    """Stub pipeline convicting any node owning a physically impossible cell.

    VCO is a ratio and BOC is bounded by operations-per-window, so with the
    sanitizer in front of it this fence can never fire — unless corruption
    leaks through.
    """

    def __init__(self, topology, period):
        self.period = period
        self._owner = {}
        for node in range(topology.num_nodes):
            for cell in node_port_cells(topology, node):
                self._owner[cell] = node

    def process_sample(self, sample, force_localization=False, detection=None):
        suspects = set()
        for frame_set, ceiling in (
            (sample.vco, 1.0 * 1.5),
            (sample.boc, 4.0 * self.period * 1.5),
        ):
            for direction in Direction.cardinal():
                values = frame_set.frames[direction].values
                for row, col in zip(*np.nonzero(values > ceiling)):
                    suspects.add(self._owner[(direction, int(row), int(col))])
        return LocalizationResult(
            cycle=sample.cycle,
            detected=bool(suspects),
            detection_probability=0.99 if suspects else 0.01,
            attackers=sorted(suspects),
        )


def benign_guard_run(
    rows,
    scenario_name,
    backend,
    fence=None,
    windows=10,
    period=64,
    degraded=True,
    data_schedule=None,
):
    """A benign-traffic episode with ``scenario_name`` faults; returns guard."""
    simulator = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=32, seed=9, backend=backend)
    )
    topology = simulator.topology
    simulator.add_source(
        UniformRandomTraffic(topology, injection_rate=0.05, seed=21)
    )
    # Data-plane kills land mid-episode (after three clean windows), the
    # placement the chaos matrix uses; monitor-only scenarios ignore it.
    scenario = default_fault_suite(
        topology, link_kill_cycle=32 + 3 * period
    )[scenario_name]
    guard = DL2FenceGuard(
        fence or PlausibilityFence(topology, period),
        MitigationPolicy.quarantine(engage_after=2),
        degraded=degraded,
    )
    monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=period)).attach(
        simulator
    )
    monitor.set_fault_plane(scenario.build_plane(topology, seed=5))
    scenario.schedule_data_faults(simulator)
    if data_schedule is not None:
        data_schedule(simulator)
    guard.attach(simulator, monitor=monitor)
    simulator.run(32 + windows * period)
    return guard


def assert_no_punishment(guard, context):
    report = guard.report
    engagements = [e for e in report.events if e.kind == "engaged"]
    convictions = [e for e in report.events if e.kind == "convicted"]
    assert guard.engaged_nodes == [], f"{context}: engaged {guard.engaged_nodes}"
    assert not engagements, f"{context}: engagement events {engagements}"
    assert not convictions, f"{context}: conviction events {convictions}"


class TestStubFenceAcrossMeshes:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    @pytest.mark.parametrize("rows", (4, 8, 16))
    def test_no_fault_scenario_punishes_on_soa(self, rows, scenario):
        guard = benign_guard_run(rows, scenario, "soa")
        assert_no_punishment(guard, f"{scenario} @ {rows}x{rows} soa")

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_no_fault_scenario_punishes_on_object(self, scenario):
        # The object backend is slower; 4x4 covers the backend-parity leg
        # (the stream regression below pins parity exhaustively).
        guard = benign_guard_run(4, scenario, "object")
        assert_no_punishment(guard, f"{scenario} @ 4x4 object")

    def test_property_is_not_vacuous_without_degraded_mode(self):
        """The stub fence must fire on raw corruption when the sanitizer is
        bypassed — otherwise the scenarios above prove nothing."""
        guard = benign_guard_run(8, "corrupt", "soa", degraded=False)
        assert guard.engaged_nodes != []


class TestTrainedPipelineStaysQuiet:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_benign_faulted_stream_never_engages(
        self, trained_pipeline, small_builder, scenario, backend
    ):
        config = small_builder.config
        simulator = NoCSimulator(
            SimulationConfig(
                rows=config.rows,
                warmup_cycles=config.warmup_cycles,
                seed=5,
                backend=backend,
            )
        )
        simulator.add_source(small_builder.make_workload("uniform_random", seed=77))
        topology = simulator.topology
        guard = DL2FenceGuard(
            trained_pipeline, MitigationPolicy.quarantine(engage_after=2)
        )
        monitor = GlobalPerformanceMonitor(
            MonitorConfig(sample_period=config.sample_period)
        ).attach(simulator)
        suite_entry = default_fault_suite(
            topology,
            link_kill_cycle=config.warmup_cycles + 3 * config.sample_period,
        )[scenario]
        monitor.set_fault_plane(suite_entry.build_plane(topology, seed=5))
        suite_entry.schedule_data_faults(simulator)
        guard.attach(simulator, monitor=monitor)
        simulator.run(config.warmup_cycles + 8 * config.sample_period + 1)
        assert_no_punishment(guard, f"trained {scenario} @ {backend}")


class TestFaultedStreamBackendParity:
    @pytest.mark.parametrize(
        "scenario", ("dropout_silent", "corrupt", "delay", "link_faults")
    )
    def test_delivered_stream_is_bit_identical(self, scenario):
        def stream(backend):
            simulator = NoCSimulator(
                SimulationConfig(rows=4, warmup_cycles=0, seed=3, backend=backend)
            )
            topology = simulator.topology
            simulator.add_source(
                UniformRandomTraffic(topology, injection_rate=0.1, seed=13)
            )
            monitor = GlobalPerformanceMonitor(
                MonitorConfig(sample_period=50)
            ).attach(simulator)
            suite_entry = default_fault_suite(topology, link_kill_cycle=150)[
                scenario
            ]
            monitor.set_fault_plane(suite_entry.build_plane(topology, seed=5))
            suite_entry.schedule_data_faults(simulator)
            simulator.run(50 * 20)
            return monitor.samples

        soa, obj = stream("soa"), stream("object")
        assert [s.cycle for s in soa] == [s.cycle for s in obj]
        for left, right in zip(soa, obj):
            assert left.metadata.get("unobservable_nodes", ()) == (
                right.metadata.get("unobservable_nodes", ())
            )
            assert left.metadata.get("detour_nodes", ()) == (
                right.metadata.get("detour_nodes", ())
            )
            for kind in ("vco", "boc"):
                for direction in Direction.cardinal():
                    assert np.array_equal(
                        getattr(left, kind).frames[direction].values,
                        getattr(right, kind).frames[direction].values,
                    )
        if scenario == "link_faults":
            assert any(s.metadata.get("detour_nodes") for s in soa)


def _schedule_link_scenario(simulator, name, period=64):
    """Inline data-fault timelines beyond the suite's canonical one."""
    node = dead_link_for(simulator.topology)
    kill = 0 if name == "link_zero" else 32 + 3 * period
    if name == "router_mid":
        simulator.schedule_data_fault(kill, dead_routers=(node,))
    else:
        simulator.schedule_data_fault(
            kill, dead_links=((node, Direction.NORTH),)
        )


class TestLinkFaultScenariosStayBenign:
    """Dead links/routers alone never cause engagements or convictions.

    The detour carriers absorb genuinely shifted congestion and a dead
    router strands whole west-first corridors — the guard must read all of
    it as infrastructure, not hostility, at every mesh scale and on both
    backends.
    """

    SCENARIOS = ("link_zero", "link_mid", "router_mid")

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("rows", (4, 8, 16))
    def test_soa_mesh_sweep(self, rows, scenario):
        guard = benign_guard_run(
            rows, "none", "soa",
            data_schedule=lambda sim: _schedule_link_scenario(sim, scenario),
        )
        assert_no_punishment(guard, f"{scenario} @ {rows}x{rows} soa")

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("rows", (4, 8))
    def test_object_backend_parity(self, rows, scenario):
        # 16x16 object runs are covered (cheaply) by the stream-parity
        # fingerprints; the guard-level property re-runs where affordable.
        guard = benign_guard_run(
            rows, "none", "object", windows=8,
            data_schedule=lambda sim: _schedule_link_scenario(sim, scenario),
        )
        assert_no_punishment(guard, f"{scenario} @ {rows}x{rows} object")
