"""Degraded-mode tests: window sanitisation and the guard's fault invariants."""

import numpy as np
import pytest

from repro.core.pipeline import LocalizationResult
from repro.defense.degraded import DegradedModeConfig, WindowSanitizer
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.faults import (
    DelayedWindowFault,
    DroppedWindowFault,
    FaultScenario,
    SilentMonitorFault,
    node_port_cells,
)
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import MeshTopology

from tests.faults.test_monitor_faults import make_sample


@pytest.fixture
def topology():
    return MeshTopology(rows=4, columns=4)


class TestPlausibilityClamp:
    def test_implausible_vco_cell_is_imputed_from_history(self, topology):
        sanitizer = WindowSanitizer(topology, sample_period=100)
        clean, health = sanitizer.sanitize(make_sample(topology, 100, fill=0.4))
        assert health.imputed_cells == 0
        corrupt = make_sample(topology, 200, fill=0.4)
        from repro.noc.topology import Direction

        corrupt.vco.frames[Direction.EAST].values[1, 1] = float(1 << 20)
        clean, health = sanitizer.sanitize(corrupt)
        assert health.imputed_cells == 1
        assert clean.vco.frames[Direction.EAST].values[1, 1] == 0.4

    def test_genuine_flood_values_survive(self, topology):
        config = DegradedModeConfig()
        sanitizer = WindowSanitizer(topology, config, sample_period=100)
        # Saturated but physical: VCO at 1.0, BOC at the per-window ceiling.
        sample = make_sample(topology, 100, fill=1.0)
        for frame in sample.boc.frames.values():
            frame.values[...] = config.boc_rate_ceiling * 100
        clean, health = sanitizer.sanitize(sample)
        assert health.imputed_cells == 0
        from repro.noc.topology import Direction

        assert clean.vco.frames[Direction.EAST].values[0, 0] == 1.0

    def test_unknown_period_disables_boc_ceiling(self, topology):
        sanitizer = WindowSanitizer(topology, sample_period=None)
        sample = make_sample(topology, 100, fill=0.4)
        from repro.noc.topology import Direction

        sample.boc.frames[Direction.EAST].values[0, 0] = float(1 << 30)
        _, health = sanitizer.sanitize(sample)
        assert health.imputed_cells == 0


class TestStuckDetection:
    def test_repeated_signature_declares_stuck_then_heals(self, topology):
        rng = np.random.default_rng(3)
        node = topology.node_id(1, 1)
        cells = node_port_cells(topology, node)
        sanitizer = WindowSanitizer(
            topology, DegradedModeConfig(stuck_after=3), sample_period=100
        )

        def send(cycle, frozen):
            sample = make_sample(topology, cycle, rng=rng)
            if frozen:
                for direction, row, col in cells:
                    sample.vco.frames[direction].values[row, col] = 0.5
                    sample.boc.frames[direction].values[row, col] = 7.0
            return sanitizer.sanitize(sample)

        _, h1 = send(100, frozen=True)
        _, h2 = send(200, frozen=True)
        assert not h1.stuck and not h2.stuck
        clean, h3 = send(300, frozen=True)
        assert h3.stuck == frozenset((node,))
        assert node in h3.unobservable
        # Stuck cells are masked to zero for the pipeline.
        for direction, row, col in cells:
            assert clean.vco.frames[direction].values[row, col] == 0.0
        # The moment real values flow again the node heals.
        _, h4 = send(400, frozen=False)
        assert h4.stuck == frozenset()

    def test_idle_all_zero_node_is_not_stuck(self, topology):
        sanitizer = WindowSanitizer(
            topology, DegradedModeConfig(stuck_after=2), sample_period=100
        )
        for i in range(6):
            _, health = sanitizer.sanitize(make_sample(topology, 100 * i, fill=0.0))
            assert not health.stuck

    def test_declared_silent_nodes_reported(self, topology):
        from repro.faults.monitor import UNOBSERVABLE_KEY

        sanitizer = WindowSanitizer(topology, sample_period=100)
        sample = make_sample(topology, 100, fill=0.2)
        sample.metadata[UNOBSERVABLE_KEY] = (5, 9)
        _, health = sanitizer.sanitize(sample)
        assert health.declared_silent == frozenset((5, 9))
        assert health.unobservable == frozenset((5, 9))


class FlaggingFence:
    """Stub pipeline that always detects and names a fixed node."""

    def __init__(self, node, detect=True):
        self.node = node
        self.detect = detect

    def process_sample(self, sample, force_localization=False, detection=None):
        return LocalizationResult(
            cycle=sample.cycle,
            detected=self.detect,
            detection_probability=0.9 if self.detect else 0.1,
            attackers=[self.node] if self.detect else [],
        )


def guarded_run(fence, scenario=None, windows=8, period=100, policy=None, rows=4):
    """A real monitor stream (idle simulator) through a guard, with faults."""
    simulator = NoCSimulator(SimulationConfig(rows=rows, warmup_cycles=0))
    guard = DL2FenceGuard(
        fence, policy or MitigationPolicy.quarantine(engage_after=2)
    )
    monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=period)).attach(
        simulator
    )
    if scenario is not None:
        monitor.set_fault_plane(scenario.build_plane(simulator.topology, seed=3))
    guard.attach(simulator, monitor=monitor)
    simulator.run(windows * period)
    return guard


class TestGuardFaultInvariants:
    def test_unobservable_node_is_never_engaged(self):
        topology = MeshTopology(rows=4, columns=4)
        silent = topology.node_id(2, 2)
        scenario = FaultScenario(
            name="silent", monitor_faults=(SilentMonitorFault(node=silent),)
        )
        guard = guarded_run(FlaggingFence(silent), scenario=scenario, windows=10)
        assert guard.engaged_nodes == []
        assert all(
            silent in window.unobservable for window in guard.report.windows
        )

    def test_observable_node_engages_under_same_fence(self):
        guard = guarded_run(FlaggingFence(5), scenario=None, windows=10)
        assert guard.engaged_nodes == [5]

    def test_silent_elsewhere_does_not_block_real_engagement(self):
        topology = MeshTopology(rows=4, columns=4)
        silent = topology.node_id(2, 2)
        scenario = FaultScenario(
            name="silent", monitor_faults=(SilentMonitorFault(node=silent),)
        )
        guard = guarded_run(FlaggingFence(5), scenario=scenario, windows=10)
        assert guard.engaged_nodes == [5]

    def test_dropped_windows_shrink_the_timeline_but_not_the_loop(self):
        scenario = FaultScenario(
            name="drop",
            monitor_faults=(DroppedWindowFault(probability=0.4, seed=5),),
        )
        guard = guarded_run(FlaggingFence(5), scenario=scenario, windows=24)
        assert 0 < len(guard.report.windows) < 24
        assert guard.engaged_nodes == [5]

    def test_delayed_windows_keep_cycles_monotone(self):
        scenario = FaultScenario(
            name="delay",
            monitor_faults=(DelayedWindowFault(probability=0.5, seed=5),),
        )
        guard = guarded_run(FlaggingFence(5, detect=False), scenario=scenario, windows=24)
        cycles = [window.cycle for window in guard.report.windows]
        assert cycles == sorted(cycles)

    def test_stale_windows_do_not_release(self):
        """A burst of delayed clean windows must not lift a fence."""
        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        policy = MitigationPolicy.quarantine(
            engage_after=1, release_after=2, stale_after=99, reengage_backoff=1.0
        )
        fence = FlaggingFence(5)
        guard = DL2FenceGuard(fence, policy)
        guard.simulator = simulator
        guard.report.sample_period = 100
        topology = simulator.topology
        simulator.run(200)
        guard.on_sample(make_sample(topology, 100), simulator)
        assert guard.engaged_nodes == [5]
        # Clean windows now — but delivered with badly stale capture clocks.
        fence.detect = False
        simulator.run(800)  # simulator.cycle = 1000
        guard.on_sample(make_sample(topology, 200), simulator)
        guard.on_sample(make_sample(topology, 300), simulator)
        guard.on_sample(make_sample(topology, 400), simulator)
        assert guard.engaged_nodes == [5]
        # Fresh clean windows release as usual.
        guard.on_sample(make_sample(topology, 900), simulator)
        guard.on_sample(make_sample(topology, 1000), simulator)
        assert guard.engaged_nodes == []

    def test_degraded_off_restores_unsanitized_stream(self):
        topology = MeshTopology(rows=4, columns=4)
        silent = topology.node_id(2, 2)
        scenario = FaultScenario(
            name="silent", monitor_faults=(SilentMonitorFault(node=silent),)
        )
        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        guard = DL2FenceGuard(
            FlaggingFence(silent),
            MitigationPolicy.quarantine(engage_after=2),
            degraded=False,
        )
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=100)).attach(
            simulator
        )
        monitor.set_fault_plane(scenario.build_plane(topology, seed=3))
        guard.attach(simulator, monitor=monitor)
        simulator.run(800)
        # Without degraded mode the silent node is fenced on naming alone —
        # exactly the failure mode degraded mode exists to prevent.
        assert guard.engaged_nodes == [silent]
