"""Unit tests for the monitor-plane fault models and the fault plane."""

import numpy as np
import pytest

from repro.faults import (
    FAULT_LIBRARY,
    CorruptedFrameFault,
    DelayedWindowFault,
    DroppedWindowFault,
    FaultScenario,
    SilentMonitorFault,
    StuckCounterFault,
    UNOBSERVABLE_KEY,
    default_fault_suite,
    node_port_cells,
    silent_node_for,
    stuck_node_for,
)
from repro.monitor.features import FeatureKind, frame_shape
from repro.monitor.frames import DirectionalFrame, FrameSample, FrameSet
from repro.noc.topology import Direction, MeshTopology


def make_sample(topology, cycle, fill=0.25, rng=None):
    """A synthetic frame sample; ``rng`` randomizes cells, ``fill`` is flat."""

    def frame_set(kind):
        frames = {}
        for direction in Direction.cardinal():
            shape = frame_shape(topology, direction)
            if rng is not None:
                values = rng.random(shape)
            else:
                values = np.full(shape, fill, dtype=np.float64)
            frames[direction] = DirectionalFrame(
                direction=direction, kind=kind, values=values, cycle=cycle
            )
        return FrameSet(kind=kind, frames=frames, cycle=cycle)

    return FrameSample(
        cycle=cycle,
        vco=frame_set(FeatureKind.VCO),
        boc=frame_set(FeatureKind.BOC),
    )


@pytest.fixture
def topology():
    return MeshTopology(rows=4, columns=4)


class TestGeometry:
    def test_corner_node_owns_two_cells(self, topology):
        assert len(node_port_cells(topology, topology.node_id(0, 0))) == 2

    def test_interior_node_owns_four_cells(self, topology):
        assert len(node_port_cells(topology, topology.node_id(1, 1))) == 4

    def test_cells_are_unique_across_nodes(self, topology):
        seen = set()
        for node in range(topology.num_nodes):
            for cell in node_port_cells(topology, node):
                assert cell not in seen
                seen.add(cell)


class TestSilentMonitorFault:
    def test_zeroes_cells_and_declares_node(self, topology):
        node = topology.node_id(2, 2)
        fault = SilentMonitorFault(node=node)
        injector = fault.build_injector(topology)
        (out,) = injector.process(make_sample(topology, 100, fill=0.5))
        for direction, row, col in node_port_cells(topology, node):
            assert out.vco.frames[direction].values[row, col] == 0.0
            assert out.boc.frames[direction].values[row, col] == 0.0
        assert out.metadata[UNOBSERVABLE_KEY] == (node,)

    def test_other_cells_untouched_and_input_not_mutated(self, topology):
        node = topology.node_id(0, 0)
        pristine = make_sample(topology, 100, fill=0.5)
        injector = SilentMonitorFault(node=node).build_injector(topology)
        (out,) = injector.process(pristine)
        assert pristine.vco.frames[Direction.EAST].values[0, 0] == 0.5
        untouched = out.vco.frames[Direction.EAST].values.copy()
        untouched[0, 0] = 0.5
        assert np.all(untouched == 0.5)

    def test_start_window_delays_onset(self, topology):
        node = topology.node_id(1, 1)
        injector = SilentMonitorFault(node=node, start_window=2).build_injector(
            topology
        )
        first = injector.process(make_sample(topology, 100))[0]
        assert UNOBSERVABLE_KEY not in first.metadata
        injector.process(make_sample(topology, 200))
        third = injector.process(make_sample(topology, 300))[0]
        assert third.metadata[UNOBSERVABLE_KEY] == (node,)


class TestStuckCounterFault:
    def test_freezes_values_without_declaring(self, topology):
        node = topology.node_id(1, 2)
        injector = StuckCounterFault(node=node).build_injector(topology)
        first = injector.process(make_sample(topology, 100, fill=0.3))[0]
        second = injector.process(make_sample(topology, 200, fill=0.9))[0]
        direction, row, col = node_port_cells(topology, node)[0]
        # First faulty window reports truth; later windows replay it.
        assert first.vco.frames[direction].values[row, col] == 0.3
        assert second.vco.frames[direction].values[row, col] == 0.3
        assert UNOBSERVABLE_KEY not in second.metadata

    def test_other_nodes_keep_flowing(self, topology):
        node = topology.node_id(1, 2)
        injector = StuckCounterFault(node=node).build_injector(topology)
        injector.process(make_sample(topology, 100, fill=0.3))
        second = injector.process(make_sample(topology, 200, fill=0.9))[0]
        stuck_cells = set(node_port_cells(topology, node))
        for direction in Direction.cardinal():
            values = second.vco.frames[direction].values
            for row in range(values.shape[0]):
                for col in range(values.shape[1]):
                    if (direction, row, col) not in stuck_cells:
                        assert values[row, col] == 0.9


class TestDroppedWindowFault:
    def test_drop_rate_and_determinism(self, topology):
        fault = DroppedWindowFault(probability=0.25, seed=3)

        def deliveries():
            injector = fault.build_injector(topology, seed=11)
            return [
                len(injector.process(make_sample(topology, 100 * i)))
                for i in range(200)
            ]

        first, second = deliveries(), deliveries()
        assert first == second
        dropped = first.count(0)
        assert 20 <= dropped <= 80  # ~50 expected at p=0.25

    def test_different_episode_seeds_differ(self, topology):
        fault = DroppedWindowFault(probability=0.5, seed=3)
        a = fault.build_injector(topology, seed=1)
        b = fault.build_injector(topology, seed=2)
        trace_a = [len(a.process(make_sample(topology, i))) for i in range(64)]
        trace_b = [len(b.process(make_sample(topology, i))) for i in range(64)]
        assert trace_a != trace_b


class TestDelayedWindowFault:
    def test_delivers_in_order_with_original_cycles(self, topology):
        fault = DelayedWindowFault(probability=0.5, delay_windows=2, seed=5)
        injector = fault.build_injector(topology, seed=9)
        delivered = []
        for i in range(64):
            delivered.extend(
                sample.cycle for sample in injector.process(make_sample(topology, 100 * i))
            )
        assert delivered == sorted(delivered)
        assert len(set(delivered)) == len(delivered)

    def test_nothing_lost_after_drain(self, topology):
        fault = DelayedWindowFault(probability=0.9, delay_windows=3, seed=5)
        injector = fault.build_injector(topology, seed=9)
        count = 0
        total = 32
        for i in range(total):
            count += len(injector.process(make_sample(topology, 100 * i)))
        # The head-of-line queue may still hold the tail; nothing duplicated.
        assert count <= total
        assert count >= total - fault.delay_windows - 1


class TestCorruptedFrameFault:
    def test_corrupts_cells_with_magnitude(self, topology):
        fault = CorruptedFrameFault(cell_probability=0.2, seed=2)
        injector = fault.build_injector(topology, seed=4)
        pristine = make_sample(topology, 100, fill=0.5)
        (out,) = injector.process(pristine)
        corrupted = sum(
            int(np.sum(frame_set.frames[d].values == fault.magnitude))
            for frame_set in (out.vco, out.boc)
            for d in Direction.cardinal()
        )
        assert corrupted > 0
        assert np.all(pristine.vco.frames[Direction.EAST].values == 0.5)

    def test_trace_is_deterministic(self, topology):
        fault = CorruptedFrameFault(cell_probability=0.1, seed=2)

        def trace():
            injector = fault.build_injector(topology, seed=4)
            out = []
            for i in range(16):
                (sample,) = injector.process(make_sample(topology, i, fill=0.5))
                out.append(sample.vco.frames[Direction.EAST].values.copy())
            return out

        for a, b in zip(trace(), trace()):
            assert np.array_equal(a, b)


class TestFaultScenario:
    def test_plane_chains_injectors(self, topology):
        node = topology.node_id(2, 2)
        scenario = FaultScenario(
            name="combo",
            monitor_faults=(
                DroppedWindowFault(probability=0.3, seed=7),
                SilentMonitorFault(node=node),
            ),
        )
        plane = scenario.build_plane(topology, seed=5)
        delivered = []
        for i in range(64):
            delivered.extend(plane.process(make_sample(topology, 100 * i, fill=0.5)))
        assert 0 < len(delivered) < 64
        for sample in delivered:
            assert sample.metadata[UNOBSERVABLE_KEY] == (node,)

    def test_empty_scenario_has_no_plane(self, topology):
        assert FaultScenario(name="none").build_plane(topology) is None

    def test_affected_nodes_union(self, topology):
        suite = default_fault_suite(topology)
        assert suite["dropout_silent"].affected_nodes(topology) == frozenset(
            (silent_node_for(topology),)
        )
        assert suite["stuck"].affected_nodes(topology) == frozenset(
            (stuck_node_for(topology),)
        )
        assert suite["dropout"].affected_nodes(topology) == frozenset()

    def test_scenarios_are_cache_hashable(self, topology):
        from repro.runtime.hashing import cache_key

        suite = default_fault_suite(topology)
        keys = {name: cache_key("test", scenario) for name, scenario in suite.items()}
        assert len(set(keys.values())) == len(keys)
        again = {
            name: cache_key("test", scenario)
            for name, scenario in default_fault_suite(topology).items()
        }
        assert keys == again


class TestLibrary:
    def test_registry_names_match_classes(self):
        for name, model in FAULT_LIBRARY.items():
            assert model.name == name

    def test_canonical_placements_avoid_attackers(self):
        from repro.attacks import ATTACK_LIBRARY, default_attack

        for rows in (6, 8, 16):
            topology = MeshTopology(rows=rows, columns=rows)
            protected = {silent_node_for(topology), stuck_node_for(topology)}
            for name in ATTACK_LIBRARY:
                model = default_attack(name, topology, 200)
                overlap = protected & set(model.containment_nodes)
                assert not overlap, f"{name} @ {rows}x{rows} overlaps {overlap}"
