"""Unit tests for the structured event-trace bus and its sinks."""

import json
import os

import pytest

from repro.obs.bus import (
    BUS,
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    configure_tracing_from_environment,
    serialize_event,
    trace_session,
)


class TestDisabledBus:
    def test_disabled_by_default(self):
        """Tier-1 runs without REPRO_TRACE must see an inactive global bus."""
        assert BUS.active is False
        assert BUS.sink is None

    def test_emit_on_disabled_bus_is_a_noop(self):
        bus = TraceBus()
        bus.emit("engaged", nodes=[1, 2])  # must not raise, must not allocate a sink

    def test_env_off_values(self, monkeypatch):
        bus = TraceBus()
        for value in ("", "0", "off", "none", "false", "no", "OFF"):
            monkeypatch.setenv("REPRO_TRACE", value)
            configure_tracing_from_environment(bus)
            assert bus.active is False

    def test_env_rejects_unknown_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "bogus")
        with pytest.raises(ValueError):
            configure_tracing_from_environment(TraceBus())


class TestContextStamping:
    def make_bus(self):
        bus = TraceBus()
        sink = RingBufferSink()
        bus.configure(sink)
        return bus, sink

    def test_events_carry_schema_and_coordinates(self):
        bus, sink = self.make_bus()
        bus.set_context(episode=2, cycle=300, window=4)
        bus.emit("detected", probability=0.75)
        (event,) = sink.events()
        assert event == {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": "detected",
            "episode": 2,
            "cycle": 300,
            "window": 4,
            "probability": 0.75,
        }

    def test_fields_override_context(self):
        bus, sink = self.make_bus()
        bus.set_context(episode=1, cycle=100, window=0)
        bus.emit("window_captured", episode=7, cycle=999, window=12)
        (event,) = sink.events()
        assert (event["episode"], event["cycle"], event["window"]) == (7, 999, 12)

    def test_partial_context_updates(self):
        bus, sink = self.make_bus()
        bus.set_context(episode=3, cycle=100, window=1)
        bus.set_context(cycle=200)  # episode/window untouched
        bus.emit("window")
        (event,) = sink.events()
        assert (event["episode"], event["cycle"], event["window"]) == (3, 200, 1)

    def test_nodes_normalised_to_sorted_ints(self):
        bus, sink = self.make_bus()
        bus.emit("engaged", nodes=frozenset({9, 1, 4}))
        bus.emit("released", nodes=(5,))
        first, second = sink.events()
        assert first["nodes"] == [1, 4, 9]
        assert second["nodes"] == [5]

    def test_set_values_normalised(self):
        bus, sink = self.make_bus()
        bus.emit("window_sanitized", declared_silent=frozenset({3, 1}), stuck=set())
        (event,) = sink.events()
        assert event["declared_silent"] == [1, 3]
        assert event["stuck"] == []

    def test_configure_resets_context(self):
        bus, _ = self.make_bus()
        bus.set_context(episode=5, cycle=900, window=8)
        bus.configure(RingBufferSink())
        assert (bus.episode, bus.cycle, bus.window) == (0, -1, -1)


class TestSerialization:
    def test_canonical_bytes(self):
        event = {"kind": "engaged", "schema": 1, "nodes": [1, 5], "cycle": 100}
        assert (
            serialize_event(event)
            == '{"cycle":100,"kind":"engaged","nodes":[1,5],"schema":1}'
        )

    def test_identical_events_identical_bytes(self):
        a = {"b": 2, "a": 1}
        b = {"a": 1, "b": 2}
        assert serialize_event(a) == serialize_event(b)


class TestRingBufferSink:
    def test_capacity_rolls_oldest_off(self):
        sink = RingBufferSink(capacity=3)
        for index in range(5):
            sink.write({"index": index})
        assert [event["index"] for event in sink.events()] == [2, 3, 4]
        assert len(sink) == 3

    def test_clear(self):
        sink = RingBufferSink()
        sink.write({"kind": "window"})
        sink.clear()
        assert sink.events() == []

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_requires_path_or_directory(self):
        with pytest.raises(ValueError):
            JsonlSink()

    def test_explicit_path_lazy_open(self, tmp_path):
        target = tmp_path / "sub" / "trace.jsonl"
        sink = JsonlSink(path=target)
        assert not target.exists()  # lazy: nothing opened before first event
        sink.write({"kind": "window", "cycle": 1})
        sink.write({"kind": "engaged", "nodes": [2]})
        sink.close()
        lines = target.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["window", "engaged"]
        assert lines[0] == serialize_event({"kind": "window", "cycle": 1})

    def test_directory_mode_uses_pid_file(self, tmp_path):
        sink = JsonlSink(directory=tmp_path)
        assert sink.path == tmp_path / f"trace-{os.getpid()}.jsonl"
        sink.write({"kind": "window"})
        sink.close()
        assert sink.path.exists()

    def test_env_jsonl_mode(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "jsonl")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        bus = configure_tracing_from_environment(TraceBus())
        assert bus.active
        assert isinstance(bus.sink, JsonlSink)
        assert bus.sink.path.parent == tmp_path
        bus.disable()

    def test_env_ring_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "ring")
        bus = configure_tracing_from_environment(TraceBus())
        assert isinstance(bus.sink, RingBufferSink)


class TestTraceSession:
    def test_installs_and_restores(self):
        sink = RingBufferSink()
        assert BUS.active is False
        with trace_session(sink):
            assert BUS.active is True
            BUS.emit("window")
        assert BUS.active is False
        assert BUS.sink is None
        assert len(sink) == 1

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with trace_session(RingBufferSink()):
                raise RuntimeError("boom")
        assert BUS.active is False

    def test_flushes_jsonl_on_exit(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        with trace_session(JsonlSink(path=target)):
            BUS.emit("window", cycle=1)
        assert target.read_text().count("\n") == 1

    def test_null_sink_session_keeps_bus_inactive(self):
        with trace_session(None):
            assert BUS.active is False
        sink = NullSink()
        sink.flush()
        sink.close()
