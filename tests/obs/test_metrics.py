"""Unit tests for the metrics registry and its Prometheus rendering."""

import pytest

from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics_from_environment,
)


class TestCounter:
    def test_inc_and_value_with_labels(self):
        counter = Counter("events_total")
        counter.inc(event="hit")
        counter.inc(2, event="hit")
        counter.inc(event="miss")
        assert counter.value(event="hit") == 3
        assert counter.value(event="miss") == 1
        assert counter.value(event="absent") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_render_sorted_labels(self):
        counter = Counter("events_total", "some events")
        counter.inc(3, mode="pool", event="task")
        assert counter.render() == [
            "# HELP events_total some events",
            "# TYPE events_total counter",
            'events_total{event="task",mode="pool"} 3',
        ]


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_labelled_series_independent(self):
        gauge = Gauge("depth")
        gauge.set(1, queue="a")
        gauge.set(9, queue="b")
        assert gauge.value(queue="a") == 1
        assert gauge.value(queue="b") == 9


class TestHistogram:
    def test_observe_count_sum(self):
        hist = Histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05, phase="inject")
        hist.observe(0.5, phase="inject")
        hist.observe(3.0, phase="inject")
        assert hist.count(phase="inject") == 3
        assert hist.sum(phase="inject") == pytest.approx(3.55)
        assert hist.count(phase="other") == 0

    def test_cumulative_bucket_rendering(self):
        hist = Histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(3.0)
        lines = hist.render()
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "latency_seconds_sum 3.55" in lines
        assert "latency_seconds_count 3" in lines

    def test_boundary_values_inclusive(self):
        """An observation exactly on a bucket boundary lands in that bucket."""
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(1.0)
        assert 'h_bucket{le="1"} 1' in hist.render()

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_snapshot_shape(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5, phase="a")
        snap = hist.snapshot()
        assert snap["type"] == "histogram"
        assert snap["buckets"] == [1.0]
        assert snap["values"]['{phase="a"}'] == {
            "counts": [1, 0],
            "sum": 0.5,
            "count": 1,
        }


class TestRegistry:
    def test_disabled_by_default(self):
        assert MetricsRegistry().active is False
        assert METRICS.active is False  # tier-1 runs without REPRO_METRICS

    def test_instruments_lazy_and_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c")
        assert registry.counter("c") is first
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with pytest.raises(TypeError):
            registry.gauge("c")

    def test_reset_keeps_handles(self):
        registry = MetricsRegistry(active=True)
        counter = registry.counter("c")
        counter.inc(5)
        hist = registry.histogram("h")
        hist.observe(0.1)
        registry.reset()
        assert counter.value() == 0
        assert hist.count() == 0
        assert registry.counter("c") is counter

    def test_render_prometheus_orders_by_name(self):
        registry = MetricsRegistry(active=True)
        registry.counter("zzz").inc()
        registry.counter("aaa").inc()
        text = registry.render_prometheus()
        assert text.index("aaa") < text.index("zzz")
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_snapshot_plain_dicts(self):
        registry = MetricsRegistry(active=True)
        registry.counter("c").inc(2, event="hit")
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "values": {'{event="hit"}': 2.0}}


class TestEnvironmentConfig:
    @pytest.mark.parametrize("value", ["1", "on", "true", "yes", "prom"])
    def test_truthy_enables(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", value)
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        registry = configure_metrics_from_environment(MetricsRegistry())
        assert registry.active is True

    @pytest.mark.parametrize("value", ["", "0", "off", "false"])
    def test_falsy_disables(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", value)
        registry = configure_metrics_from_environment(MetricsRegistry(active=True))
        assert registry.active is False


class TestHistogramSeries:
    def test_bound_series_matches_labelled_observe(self):
        from repro.obs.metrics import Histogram

        hist = Histogram("h", buckets=(0.1, 1.0))
        handle = hist.series(backend="soa", phase="inject")
        handle.observe(0.05)
        hist.observe(0.5, phase="inject", backend="soa")
        assert hist.count(backend="soa", phase="inject") == 2
        assert hist.sum(backend="soa", phase="inject") == pytest.approx(0.55)

    def test_handle_survives_registry_reset(self):
        registry = MetricsRegistry(active=True)
        hist = registry.histogram("h")
        handle = hist.series(phase="a")
        handle.observe(0.1)
        registry.reset()
        handle.observe(0.2)
        assert hist.count(phase="a") == 1
        assert hist.sum(phase="a") == pytest.approx(0.2)
