"""Unit tests for the trace-summary CLI (`python -m repro.obs.summarize`)."""

import json

import pytest

from repro.obs.bus import serialize_event
from repro.obs.summarize import (
    crosscheck_report,
    load_events,
    main,
    timeline_lines,
    trace_counts,
)


def event(kind, episode=0, cycle=100, window=1, **fields):
    return {
        "schema": 1,
        "kind": kind,
        "episode": episode,
        "cycle": cycle,
        "window": window,
        **fields,
    }


SAMPLE_EVENTS = [
    event("window", window=0, cycle=100, phase="benign", detected=False),
    event("detected", window=2, cycle=300, probability=0.9, via="detector"),
    event("engaged", window=2, cycle=300, nodes=[5, 34], limit=0.0),
    event("convicted", window=3, cycle=400, nodes=[5, 34]),
    event("window_sanitized", window=4, cycle=500, imputed_cells=3),
    event("detour_discount", window=4, cycle=500, nodes=[7], discount=0.5),
    event("released", window=8, cycle=900, nodes=[5], clean_windows=2, remaining=1),
    event("rolled_back", window=9, cycle=1000, nodes=[34], remaining=0),
    event("released", window=9, cycle=1000, nodes=[34], remaining=0),
]


def write_trace(path, events):
    path.write_text("".join(serialize_event(e) + "\n" for e in events))
    return path


class TestLoadEvents:
    def test_reads_files_and_directories(self, tmp_path):
        write_trace(tmp_path / "trace-1.jsonl", SAMPLE_EVENTS[:2])
        write_trace(tmp_path / "trace-2.jsonl", SAMPLE_EVENTS[2:4])
        assert len(load_events([tmp_path])) == 4
        assert len(load_events([tmp_path / "trace-1.jsonl"])) == 2

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_events([tmp_path / "absent.jsonl"])

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_events([tmp_path])

    def test_garbage_line_raises_with_location(self, tmp_path):
        bad = tmp_path / "trace-1.jsonl"
        bad.write_text('{"kind":"window"}\nnot json\n')
        with pytest.raises(ValueError, match="trace-1.jsonl:2"):
            load_events([bad])

    def test_non_event_json_rejected(self, tmp_path):
        bad = tmp_path / "trace-1.jsonl"
        bad.write_text('{"no_kind": 1}\n')
        with pytest.raises(ValueError, match="not a trace event"):
            load_events([bad])


class TestTraceCounts:
    def test_counts_match_guard_bookkeeping(self):
        assert trace_counts(SAMPLE_EVENTS) == {
            "engagements": 2,
            # one probe release + one rolled-back node; the final bare
            # "released" marker restates the rollback and must not double-count
            "releases": 2,
            "convictions": 2,
            "clamps": 3,
            "detour_discounts": 1,
        }

    def test_empty_trace_is_all_zero(self):
        assert set(trace_counts([]).values()) == {0}


class TestCrosscheck:
    def report(self, **overrides):
        report = {
            "event_counts": {
                "engagements": 2,
                "releases": 2,
                "convictions": 2,
                "clamps": 3,
                "detour_discounts": 1,
            },
            "events": [
                {"kind": "engaged", "cycle": 300, "nodes": [5, 34]},
                {"kind": "convicted", "cycle": 400, "nodes": [5, 34]},
                {"kind": "rolled_back", "cycle": 1000, "nodes": [34]},
            ],
        }
        report.update(overrides)
        return report

    def test_agreeing_report_passes(self):
        assert crosscheck_report(SAMPLE_EVENTS, self.report()) == []

    def test_count_mismatch_detected(self):
        report = self.report()
        report["event_counts"]["convictions"] = 9
        problems = crosscheck_report(SAMPLE_EVENTS, report)
        assert any("convictions" in p for p in problems)

    def test_event_log_mismatch_detected(self):
        report = self.report(
            events=[{"kind": "engaged", "cycle": 300, "nodes": [5]}]
        )
        problems = crosscheck_report(SAMPLE_EVENTS, report)
        assert any("engaged nodes" in p for p in problems)

    def test_report_without_counts_checks_event_log_only(self):
        assert crosscheck_report(SAMPLE_EVENTS, self.report(event_counts={})) == []


class TestTimeline:
    def test_decision_events_rendered_in_order(self):
        lines = timeline_lines(SAMPLE_EVENTS, episode=0)
        assert lines[0].startswith("episode 0: 8 decision events")
        assert "detected" in lines[1]
        assert "engaged" in lines[2]
        assert "nodes=[5, 34]" in lines[2]

    def test_window_events_opt_in(self):
        assert len(timeline_lines(SAMPLE_EVENTS, episode=0)) == 9
        assert (
            len(timeline_lines(SAMPLE_EVENTS, episode=0, include_windows=True)) == 10
        )

    def test_other_episodes_filtered(self):
        assert timeline_lines(SAMPLE_EVENTS, episode=3) == [
            "episode 3: 0 decision events"
        ]


class TestMainExitCodes:
    def test_ok_run(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace-1.jsonl", SAMPLE_EVENTS)
        assert main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "9 events" in out
        assert "totals:" in out

    def test_crosscheck_pass_and_fail(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace-1.jsonl", SAMPLE_EVENTS)
        good = TestCrosscheck().report()
        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(good))
        assert main([str(trace), "--report", str(report_path)]) == 0
        assert "cross-check ok" in capsys.readouterr().out

        good["event_counts"]["engagements"] = 99
        report_path.write_text(json.dumps(good))
        assert main([str(trace), "--report", str(report_path)]) == 1
        assert "cross-check FAILED" in capsys.readouterr().err

    def test_missing_trace_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unreadable_report_is_usage_error(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace-1.jsonl", SAMPLE_EVENTS)
        assert main([str(trace), "--report", str(tmp_path / "absent.json")]) == 2
        assert "cannot read report" in capsys.readouterr().err

    def test_episode_filter(self, tmp_path, capsys):
        events = SAMPLE_EVENTS + [event("engaged", episode=1, nodes=[2])]
        trace = write_trace(tmp_path / "trace-1.jsonl", events)
        assert main([str(trace), "--episode", "1"]) == 0
        out = capsys.readouterr().out
        assert "episode 1: 1 decision events" in out
        assert "episode 0:" not in out

    def test_module_entrypoint(self, tmp_path):
        """`python -m repro.obs.summarize` must resolve and run."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src"
        trace = write_trace(tmp_path / "trace-1.jsonl", SAMPLE_EVENTS)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.summarize", str(trace)],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(src)},
        )
        assert proc.returncode == 0, proc.stderr
        assert "9 events" in proc.stdout
