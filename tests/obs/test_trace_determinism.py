"""Byte-identical trace streams across all three simulator backends.

The flight recorder must be a pure function of the observed window stream:
for the same seeds, the JSONL event stream of a traced guarded episode is
**byte-identical** across the object, solo-SoA and episode-batched-SoA
backends, for benign traffic and every refined-DoS variant — and tracing
must be determinism-neutral: a traced run's behaviour fingerprint
(``DefenseReport.as_dict()``) equals the untraced run's.

An oracle fence (perfect detection keyed off ``attack_active``) stands in
for the CNNs so the closed loop engages/releases deterministically without
a training stage.
"""

import json

import pytest

from repro.attacks import ATTACK_LIBRARY, default_attack_suite
from repro.core.pipeline import LocalizationResult
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.monitor.sampler import MonitorConfig
from repro.noc.batch_sim import BatchedNoCSimulator
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.obs.bus import BUS, JsonlSink, RingBufferSink, serialize_event, trace_session
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

SAMPLE_PERIOD = 64
VARIANTS = ("benign", "flood") + tuple(sorted(ATTACK_LIBRARY))


class OracleFence:
    """Perfect pipeline: detects exactly while the attack window is active."""

    def __init__(self, attackers):
        self.attackers = list(attackers)

    def process_sample(self, sample, force_localization=False):
        return LocalizationResult(
            cycle=sample.cycle,
            detected=sample.attack_active,
            detection_probability=1.0 if sample.attack_active else 0.0,
            attackers=list(self.attackers) if sample.attack_active else [],
        )


def _wire_guarded_episode(simulator, rows, variant, seed):
    """Sources + oracle-fenced guard; identical wiring for solo and lane."""
    topology = simulator.topology
    simulator.add_source(
        UniformRandomTraffic(topology, injection_rate=0.05, seed=seed + 1)
    )
    if variant == "flood":
        last = rows * rows - 1
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(attackers=(last, 3), victim=1, fir=0.8),
                topology,
                seed=seed + 2,
            )
        )
    elif variant != "benign":
        model = default_attack_suite(topology, SAMPLE_PERIOD)[variant]
        simulator.add_source(model.build_source(topology, seed=seed + 2))
    guard = DL2FenceGuard(
        OracleFence((rows * rows - 1, 3)),
        MitigationPolicy.quarantine(engage_after=1, release_after=2, flush_queue=True),
    )
    guard.attach(simulator, monitor_config=MonitorConfig(sample_period=SAMPLE_PERIOD))
    return guard


def _solo_trace(backend, rows, variant, seed, cycles, path, episode=0):
    simulator = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=16, backend=backend, seed=seed)
    )
    simulator.lane_index = episode  # label solo episodes like batched lanes
    with trace_session(JsonlSink(path=path)):
        guard = _wire_guarded_episode(simulator, rows, variant, seed)
        simulator.run(cycles)
    return path.read_bytes(), guard.report.as_dict()


def _batched_trace(rows, episodes, cycles, path):
    batched = BatchedNoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=16, backend="soa"),
        episodes=len(episodes),
    )
    with trace_session(JsonlSink(path=path)):
        guards = [
            _wire_guarded_episode(batched.lane(index), rows, variant, seed)
            for index, (variant, seed) in enumerate(episodes)
        ]
        batched.run(cycles)
    return path.read_bytes(), [guard.report.as_dict() for guard in guards]


def _episode_lines(raw: bytes, episode: int) -> list[str]:
    return [
        line
        for line in raw.decode().splitlines()
        if json.loads(line)["episode"] == episode
    ]


def _geometry(variant):
    """Variant runs need the 8x8 mesh the refined-DoS suite is tuned for."""
    return (6, 400) if variant in ("benign", "flood") else (8, 400)


class TestSoloBackendsByteIdentical:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_object_and_soa_streams_equal(self, tmp_path, variant):
        rows, cycles = _geometry(variant)
        soa_raw, soa_report = _solo_trace(
            "soa", rows, variant, 5, cycles, tmp_path / "soa.jsonl"
        )
        obj_raw, obj_report = _solo_trace(
            "object", rows, variant, 5, cycles, tmp_path / "object.jsonl"
        )
        assert soa_raw, "traced run produced no events"
        assert soa_raw == obj_raw
        assert soa_report == obj_report


class TestBatchedStreamsMatchSolo:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_single_lane_stream_equals_solo(self, tmp_path, variant):
        rows, cycles = _geometry(variant)
        batched_raw, batched_reports = _batched_trace(
            rows, [(variant, 5)], cycles, tmp_path / "batched.jsonl"
        )
        solo_raw, solo_report = _solo_trace(
            "soa", rows, variant, 5, cycles, tmp_path / "solo.jsonl"
        )
        assert batched_raw == solo_raw
        assert batched_reports[0] == solo_report

    def test_mixed_lanes_interleave_without_bleed(self, tmp_path):
        """Per-episode slices of a mixed batch equal the solo streams."""
        rows, cycles = 6, 400
        episodes = [("flood", 11), ("benign", 22), ("flood", 33)]
        batched_raw, batched_reports = _batched_trace(
            rows, episodes, cycles, tmp_path / "batched.jsonl"
        )
        for index, (variant, seed) in enumerate(episodes):
            solo_raw, solo_report = _solo_trace(
                "soa",
                rows,
                variant,
                seed,
                cycles,
                tmp_path / f"solo-{index}.jsonl",
                episode=index,
            )
            assert _episode_lines(batched_raw, index) == solo_raw.decode().splitlines()
            assert batched_reports[index] == solo_report


class TestTracingIsDeterminismNeutral:
    def test_report_fingerprint_unchanged_by_tracing(self, tmp_path):
        """Tracing on vs off: identical decisions, identical report."""

        def episode(traced):
            simulator = NoCSimulator(
                SimulationConfig(rows=6, warmup_cycles=16, backend="soa", seed=5)
            )
            if traced:
                with trace_session(JsonlSink(path=tmp_path / "trace.jsonl")):
                    guard = _wire_guarded_episode(simulator, 6, "flood", 5)
                    simulator.run(400)
            else:
                guard = _wire_guarded_episode(simulator, 6, "flood", 5)
                simulator.run(400)
            return guard.report.as_dict()

        traced, untraced = episode(True), episode(False)
        # The only allowed difference: event_counts populates when traced.
        assert traced.pop("event_counts")["engagements"] > 0
        assert untraced.pop("event_counts") == {}
        assert traced == untraced

    def test_ring_and_jsonl_sinks_record_identical_events(self, tmp_path):
        _, _ = _solo_trace("soa", 6, "flood", 5, 400, tmp_path / "trace.jsonl")
        simulator = NoCSimulator(
            SimulationConfig(rows=6, warmup_cycles=16, backend="soa", seed=5)
        )
        with trace_session(RingBufferSink()) as ring:
            _wire_guarded_episode(simulator, 6, "flood", 5)
            simulator.run(400)
        ring_lines = [serialize_event(event) for event in ring.events()]
        assert ring_lines == (tmp_path / "trace.jsonl").read_text().splitlines()

    def test_global_bus_left_disabled(self):
        assert BUS.active is False


class TestLearnedPipelineTraced:
    def test_closed_loop_fingerprints_equal_under_tracing(
        self, trained_pipeline, tmp_path
    ):
        """The CNN-driven closed loop stays backend-identical when traced."""

        def episode(backend):
            simulator = NoCSimulator(
                SimulationConfig(rows=6, warmup_cycles=16, seed=0, backend=backend)
            )
            simulator.add_source(
                UniformRandomTraffic(simulator.topology, injection_rate=0.04, seed=5)
            )
            simulator.add_source(
                FloodingAttacker(
                    FloodingConfig(
                        attackers=(34, 5),
                        victim=1,
                        fir=0.8,
                        start_cycle=200,
                        end_cycle=900,
                    ),
                    simulator.topology,
                    seed=6,
                )
            )
            guard = DL2FenceGuard(
                trained_pipeline,
                MitigationPolicy.quarantine(
                    engage_after=1, release_after=2, flush_queue=True
                ),
                attack_start=200,
                attack_end=900,
                true_attackers=(34, 5),
            )
            guard.attach(simulator, monitor_config=MonitorConfig(sample_period=100))
            path = tmp_path / f"{backend}.jsonl"
            with trace_session(JsonlSink(path=path)):
                simulator.run(1200)
            return path.read_bytes(), guard.report.as_dict()

        soa_raw, soa_report = episode("soa")
        obj_raw, obj_report = episode("object")
        assert soa_raw == obj_raw
        assert soa_report == obj_report
        assert soa_report["event_counts"]  # populated by the traced run
