"""Unit tests for the simulator driver and latency statistics."""

import pytest

from repro.noc.packet import Packet
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.stats import LatencyStats
from repro.noc.topology import MeshTopology


class OneShotSource:
    """Injects a fixed list of packets at given cycles."""

    def __init__(self, schedule):
        self.schedule = schedule  # dict: cycle -> list[Packet]

    def packets_for_cycle(self, cycle):
        return self.schedule.get(cycle, [])


class TestSimulationConfig:
    def test_square_default(self):
        config = SimulationConfig(rows=4)
        assert config.columns == 4
        assert config.topology().num_nodes == 16

    def test_invalid(self):
        with pytest.raises(ValueError):
            SimulationConfig(rows=0)
        with pytest.raises(ValueError):
            SimulationConfig(rows=4, warmup_cycles=-1)


class TestSimulatorRun:
    def test_delivers_scheduled_packets(self):
        sim = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        packet = Packet(source=0, destination=15, size_flits=2, created_cycle=0)
        sim.add_source(OneShotSource({0: [packet]}))
        sim.run(40)
        assert packet.is_delivered
        assert sim.stats.packets_delivered == 1
        assert sim.cycle == 40

    def test_run_negative_rejected(self):
        sim = NoCSimulator(SimulationConfig(rows=4))
        with pytest.raises(ValueError):
            sim.run(-1)

    def test_drain_empties_network(self):
        sim = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        packets = [
            Packet(source=i, destination=15 - i, size_flits=4, created_cycle=0)
            for i in range(4)
        ]
        sim.add_source(OneShotSource({0: packets}))
        sim.run(2)
        extra = sim.drain()
        assert extra > 0
        assert sim.network.in_flight_flits == 0
        assert all(p.is_delivered for p in packets)

    def test_drain_restores_sources(self):
        sim = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        source = OneShotSource({})
        sim.add_source(source)
        sim.drain()
        assert sim.sources == [source]


class TestObservers:
    def test_observer_called_at_period(self):
        sim = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        calls = []
        sim.add_observer(10, lambda s: calls.append(s.cycle))
        sim.run(35)
        assert calls == [10, 20, 30]

    def test_observer_respects_warmup(self):
        sim = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=20))
        calls = []
        sim.add_observer(10, lambda s: calls.append(s.cycle))
        sim.run(45)
        assert calls == [30, 40]

    def test_invalid_period(self):
        sim = NoCSimulator(SimulationConfig(rows=4))
        with pytest.raises(ValueError):
            sim.add_observer(0, lambda s: None)


class TestLatencyStats:
    def test_from_delivered_packets(self):
        packet = Packet(source=0, destination=1, size_flits=2, created_cycle=0)
        packet.injected_cycle = 4
        packet.ejected_cycle = 10
        stats = LatencyStats.from_packets([packet])
        assert stats.delivered_packets == 1
        assert stats.delivered_flits == 2
        assert stats.packet_latency == 10.0
        assert stats.packet_queue_latency == 4.0
        assert stats.flit_queue_latency == 4.0
        assert stats.flit_latency == pytest.approx(4.0 + 3.0)

    def test_empty_stats(self):
        stats = LatencyStats.from_packets([])
        assert stats.delivered_packets == 0
        assert stats.packet_latency == 0.0

    def test_ignores_undelivered(self):
        undelivered = Packet(source=0, destination=1)
        stats = LatencyStats.from_packets([undelivered])
        assert stats.delivered_packets == 0

    def test_benign_only_filter(self):
        sim = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        benign = Packet(source=0, destination=3, size_flits=1, created_cycle=0)
        malicious = Packet(
            source=12, destination=15, size_flits=1, created_cycle=0, is_malicious=True
        )
        sim.add_source(OneShotSource({0: [benign, malicious]}))
        sim.run(30)
        assert sim.latency(benign_only=True).delivered_packets == 1
        assert sim.latency(benign_only=False).delivered_packets == 2

    def test_delivery_ratio(self):
        sim = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        assert sim.stats.delivery_ratio == 1.0
