"""Fingerprint equivalence of the episode-batched SoA backend.

The batch axis is only allowed to buy *wall-clock*: a batched run of N
episodes must be observably indistinguishable, per episode, from N solo
SoA runs with the same seeds — feature frames (VCO floats included),
latency statistics, delivered-packet order, drop counts.  Two pins:

* ``batched(N=1)`` is fingerprint-identical to today's solo SoA path;
* ``batched(N=k)`` row ``i`` equals a solo run of episode ``i`` — episodes
  cannot bleed into each other through the shared state arrays, the
  grouped ingress, or the disjoint-union arbitration.

The matrix sweeps mesh sizes 4x4–16x16, benign/flood traffic, and all
five refined-DoS variants of :mod:`repro.attacks`.
"""

import numpy as np
import pytest

from repro.attacks import ATTACK_LIBRARY, default_attack_suite
from repro.monitor.features import FeatureKind
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.batch_sim import BatchedNoCSimulator
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

SAMPLE_PERIOD = 64


def _packet_key(packet):
    return (
        packet.source,
        packet.destination,
        packet.size_flits,
        packet.created_cycle,
        packet.injected_cycle,
        packet.ejected_cycle,
        packet.is_malicious,
    )


def _wire_episode(simulator, rows, variant, seed):
    """Attach one episode's sources + monitor; identical for solo and lane."""
    topology = simulator.topology
    simulator.add_source(
        UniformRandomTraffic(topology, injection_rate=0.05, seed=seed + 1)
    )
    if variant == "flood":
        last = rows * rows - 1
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(attackers=(last, 3), victim=1, fir=0.8),
                topology,
                seed=seed + 2,
            )
        )
    elif variant != "benign":
        model = default_attack_suite(topology, SAMPLE_PERIOD)[variant]
        simulator.add_source(model.build_source(topology, seed=seed + 2))
    return GlobalPerformanceMonitor(MonitorConfig(sample_period=SAMPLE_PERIOD)).attach(
        simulator
    )


def _solo_run(rows, variant, seed, cycles):
    simulator = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=16, backend="soa", seed=seed)
    )
    monitor = _wire_episode(simulator, rows, variant, seed)
    simulator.run(cycles)
    return simulator, monitor


def _batched_run(rows, episodes, cycles):
    """One batched simulation; ``episodes`` is a list of (variant, seed)."""
    batched = BatchedNoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=16, backend="soa"),
        episodes=len(episodes),
    )
    monitors = [
        _wire_episode(batched.lane(index), rows, variant, seed)
        for index, (variant, seed) in enumerate(episodes)
    ]
    batched.run(cycles)
    return batched, monitors


def assert_same_samples(monitor_a, monitor_b):
    assert len(monitor_a.samples) == len(monitor_b.samples) > 0
    for sample_a, sample_b in zip(monitor_a.samples, monitor_b.samples):
        assert sample_a.cycle == sample_b.cycle
        assert sample_a.attack_active == sample_b.attack_active
        for kind in FeatureKind:
            for direction in Direction.cardinal():
                values_a = sample_a.feature(kind).frames[direction].values
                values_b = sample_b.feature(kind).frames[direction].values
                assert np.array_equal(values_a, values_b), (
                    sample_a.cycle,
                    kind,
                    direction,
                )


def assert_lane_matches_solo(lane, solo):
    """Full per-episode fingerprint: stats, delivery order, drops, latency."""
    stats_a, stats_b = lane.stats, solo.stats
    for field in (
        "cycles",
        "packets_created",
        "packets_injected",
        "packets_delivered",
        "flits_delivered",
        "malicious_packets_created",
        "malicious_packets_delivered",
    ):
        assert getattr(stats_a, field) == getattr(stats_b, field), field
    assert [_packet_key(p) for p in stats_a.delivered] == [
        _packet_key(p) for p in stats_b.delivered
    ]
    assert lane.network.dropped_packets == solo.network.dropped_packets
    for benign_only in (True, False):
        assert (
            lane.latency(benign_only=benign_only).as_dict()
            == solo.latency(benign_only=benign_only).as_dict()
        )


class TestSingleEpisodeIdentity:
    @pytest.mark.parametrize("rows", [4, 8, 16])
    def test_batched_n1_matches_solo(self, rows):
        """batched(N=1) is fingerprint-identical to the solo SoA path."""
        cycles = 400 if rows < 16 else 220
        batched, monitors = _batched_run(rows, [("flood", 7)], cycles)
        solo, solo_monitor = _solo_run(rows, "flood", 7, cycles)
        assert_same_samples(monitors[0], solo_monitor)
        assert_lane_matches_solo(batched.lane(0), solo)

    def test_batched_n1_benign(self):
        batched, monitors = _batched_run(6, [("benign", 3)], 400)
        solo, solo_monitor = _solo_run(6, "benign", 3, 400)
        assert_same_samples(monitors[0], solo_monitor)
        assert_lane_matches_solo(batched.lane(0), solo)


class TestEpisodeRowsMatchSoloRuns:
    @pytest.mark.parametrize("rows", [4, 8, 16])
    def test_mixed_lanes_match_solo_episodes(self, rows):
        """Row i of a mixed benign/flood batch equals solo episode i."""
        cycles = 400 if rows < 16 else 220
        episodes = [("benign", 11), ("flood", 22), ("flood", 33), ("benign", 44)]
        batched, monitors = _batched_run(rows, episodes, cycles)
        for index, (variant, seed) in enumerate(episodes):
            solo, solo_monitor = _solo_run(rows, variant, seed, cycles)
            assert_same_samples(monitors[index], solo_monitor)
            assert_lane_matches_solo(batched.lane(index), solo)

    @pytest.mark.parametrize("variant", sorted(ATTACK_LIBRARY))
    def test_refined_dos_variants(self, variant):
        """Every refined-DoS variant survives batching bit-identically.

        Each variant rides in a lane next to a benign episode, so the test
        also pins that an attacking episode cannot perturb a neighbour.
        """
        rows, cycles = 8, 400
        episodes = [(variant, 5), ("benign", 6), (variant, 7)]
        batched, monitors = _batched_run(rows, episodes, cycles)
        for index, (lane_variant, seed) in enumerate(episodes):
            solo, solo_monitor = _solo_run(rows, lane_variant, seed, cycles)
            assert_same_samples(monitors[index], solo_monitor)
            assert_lane_matches_solo(batched.lane(index), solo)


class TestLaneSurface:
    def test_direct_per_episode_calls_raise(self):
        batched, _ = _batched_run(4, [("benign", 1), ("benign", 2)], 10)
        with pytest.raises(TypeError):
            batched.network.enqueue_batch(
                np.array([0]), np.array([1]), 4, 0, False
            )
        with pytest.raises(TypeError):
            batched.network.feature_frames(FeatureKind.VCO)

    def test_lane_throttle_is_episode_local(self):
        """A quarantine on lane 0 must not restrict the same node of lane 1."""
        cycles = 300
        batched, _ = _batched_run(6, [("flood", 9), ("flood", 9)], 0)
        batched.lane(0).quarantine_node(2)
        batched.run(cycles)
        assert batched.lane(0).restricted_nodes == [2]
        assert batched.lane(1).restricted_nodes == []

        solo_restricted, _ = _solo_run(6, "flood", 9, 0)
        solo_restricted.quarantine_node(2)
        solo_restricted.run(cycles)
        assert_lane_matches_solo(batched.lane(0), solo_restricted)

        solo_free, _ = _solo_run(6, "flood", 9, 0)
        solo_free.run(cycles)
        assert_lane_matches_solo(batched.lane(1), solo_free)
