"""Unit tests for the per-node injection rate-limit / quarantine hook."""

import pytest

from repro.noc.network import MeshNetwork
from repro.noc.packet import Packet
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import MeshTopology
from repro.traffic.synthetic import UniformRandomTraffic


def run_cycles(network, cycles, start=0):
    for cycle in range(start, start + cycles):
        network.step(cycle)
    return start + cycles


def saturated_source(network, node, cycles):
    """Keep ``node``'s source queue loaded and count packets it injects."""
    destination = 0 if node != 0 else 1
    for index in range(cycles):
        network.enqueue_packet(
            Packet(source=node, destination=destination, size_flits=1, created_cycle=0)
        )
    run_cycles(network, cycles)
    return network.stats.packets_injected


class TestInjectionLimitAPI:
    def test_default_is_unrestricted(self):
        network = MeshNetwork(MeshTopology(rows=4))
        assert all(network.injection_limit(n) == 1.0 for n in range(16))
        assert network.restricted_nodes == []

    def test_limit_validation(self):
        network = MeshNetwork(MeshTopology(rows=4))
        with pytest.raises(ValueError):
            network.set_injection_limit(0, 1.5)
        with pytest.raises(ValueError):
            network.set_injection_limit(0, -0.1)
        with pytest.raises(ValueError):
            network.set_injection_limit(99, 0.5)

    def test_restricted_nodes_and_reset(self):
        network = MeshNetwork(MeshTopology(rows=4))
        network.set_injection_limit(3, 0.5)
        network.set_injection_limit(7, 0.0)
        assert network.restricted_nodes == [3, 7]
        network.reset_injection_limits()
        assert network.restricted_nodes == []
        assert network.injection_limit(3) == 1.0


class TestThrottledInjection:
    def test_quarantine_blocks_all_injection(self):
        network = MeshNetwork(MeshTopology(rows=4))
        network.set_injection_limit(5, 0.0)
        injected = saturated_source(network, 5, cycles=50)
        assert injected == 0
        assert network.queued_flits == 50

    def test_fractional_limit_scales_rate(self):
        full = saturated_source(MeshNetwork(MeshTopology(rows=4)), 5, cycles=100)
        network = MeshNetwork(MeshTopology(rows=4))
        network.set_injection_limit(5, 0.25)
        quarter = saturated_source(network, 5, cycles=100)
        assert full > 0
        assert 0 < quarter <= full * 0.3

    def test_release_restores_full_rate(self):
        network = MeshNetwork(MeshTopology(rows=4))
        network.set_injection_limit(5, 0.0)
        saturated_source(network, 5, cycles=20)
        assert network.stats.packets_injected == 0
        network.set_injection_limit(5, 1.0)
        run_cycles(network, 40, start=20)
        assert network.stats.packets_injected > 0

    def test_tightening_limit_discards_accrued_credit(self):
        """Credit accrued under a looser limit must not leak past quarantine."""
        network = MeshNetwork(MeshTopology(rows=4))
        network.set_injection_limit(5, 0.5)
        run_cycles(network, 4)  # idle: allowance accrues towards the cap
        network.set_injection_limit(5, 0.0)
        network.enqueue_packet(
            Packet(source=5, destination=0, size_flits=1, created_cycle=4)
        )
        run_cycles(network, 20, start=4)
        assert network.stats.packets_injected == 0

    def test_quarantine_never_strands_partial_packet(self):
        """Continuation flits of an already-started packet bypass the limit.

        Otherwise a quarantined node would hold a headless partial worm (and
        its VCs) inside the routers for the whole quarantine.
        """
        network = MeshNetwork(MeshTopology(rows=4))
        packet = Packet(source=5, destination=0, size_flits=4, created_cycle=0)
        network.enqueue_packet(packet)
        network.step(0)  # bandwidth 1: only the head flit enters the network
        assert packet.injected_cycle is not None
        network.set_injection_limit(5, 0.0)
        # a second packet queued behind must stay blocked
        network.enqueue_packet(
            Packet(source=5, destination=0, size_flits=4, created_cycle=1)
        )
        run_cycles(network, 60, start=1)
        assert packet.is_delivered
        assert network.in_flight_flits == 0
        assert network.stats.packets_injected == 1

    def test_idle_node_cannot_burst_beyond_bandwidth(self):
        """Credit accrued while idle is capped at one cycle's bandwidth."""
        network = MeshNetwork(MeshTopology(rows=4))
        network.set_injection_limit(5, 0.5)
        run_cycles(network, 100)  # long idle accrual period
        for _ in range(4):
            network.enqueue_packet(
                Packet(source=5, destination=0, size_flits=1, created_cycle=100)
            )
        network.step(100)
        assert network.stats.packets_injected <= network.injection_bandwidth


class TestFlushSourceQueue:
    def test_flush_drops_queued_packets(self):
        network = MeshNetwork(MeshTopology(rows=4))
        for _ in range(3):
            network.enqueue_packet(
                Packet(source=5, destination=0, size_flits=4, created_cycle=0)
            )
        dropped = network.flush_source_queue(5)
        assert dropped == 12
        assert network.queued_flits == 0
        assert network.dropped_packets == 3

    def test_flush_keeps_partially_injected_packet(self):
        """Flits of a packet whose head already entered the network survive."""
        network = MeshNetwork(MeshTopology(rows=4))
        packet = Packet(source=5, destination=0, size_flits=4, created_cycle=0)
        network.enqueue_packet(packet)
        network.step(0)  # bandwidth 1: only the head flit is injected
        assert packet.injected_cycle is not None
        dropped = network.flush_source_queue(5)
        assert dropped == 0
        assert len(network.source_queues[5]) == 3
        run_cycles(network, 40, start=1)
        assert packet.is_delivered

    def test_flush_empty_queue_is_noop(self):
        network = MeshNetwork(MeshTopology(rows=4))
        assert network.flush_source_queue(5) == 0
        assert network.dropped_packets == 0


class TestSimulatorWrappers:
    def test_throttle_quarantine_release(self):
        simulator = NoCSimulator(SimulationConfig(rows=4))
        simulator.throttle_node(3, 0.25)
        simulator.quarantine_node(7)
        assert simulator.restricted_nodes == [3, 7]
        assert simulator.network.injection_limit(3) == 0.25
        assert simulator.network.injection_limit(7) == 0.0
        simulator.release_node(3)
        simulator.release_node(7)
        assert simulator.restricted_nodes == []

    def test_drain_ignores_quarantined_backlog(self):
        """drain() must terminate even when a fenced queue can never empty."""
        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0, seed=0))
        for _ in range(4):
            simulator.network.enqueue_packet(
                Packet(source=5, destination=0, size_flits=4, created_cycle=0)
            )
        simulator.run(2)  # first packet is mid-injection
        simulator.quarantine_node(5)
        extra = simulator.drain(max_cycles=2000)
        assert extra < 2000
        assert simulator.network.in_flight_flits == 0
        assert simulator.network.queued_flits > 0  # fenced backlog remains

    def test_quarantined_source_generates_no_traffic(self):
        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0, seed=0))
        simulator.add_source(
            UniformRandomTraffic(simulator.topology, injection_rate=0.5, seed=0)
        )
        for node in range(simulator.topology.num_nodes):
            simulator.quarantine_node(node)
        simulator.run(100)
        assert simulator.stats.packets_delivered == 0
