"""Unit tests for the mesh network switching behaviour."""

import pytest

from repro.noc.network import MeshNetwork
from repro.noc.packet import Packet
from repro.noc.topology import Direction, MeshTopology


def run_cycles(network, cycles, start=0):
    for cycle in range(start, start + cycles):
        network.step(cycle)
    return start + cycles


class TestSinglePacketDelivery:
    def test_packet_reaches_destination(self):
        network = MeshNetwork(MeshTopology(rows=4))
        packet = Packet(source=0, destination=15, size_flits=4, created_cycle=0)
        assert network.enqueue_packet(packet)
        run_cycles(network, 40)
        assert packet.is_delivered
        assert network.stats.packets_delivered == 1
        assert network.stats.flits_delivered == 4

    def test_latency_at_least_hop_count(self):
        network = MeshNetwork(MeshTopology(rows=4))
        packet = Packet(source=0, destination=15, size_flits=1, created_cycle=0)
        network.enqueue_packet(packet)
        run_cycles(network, 40)
        # 6 hops plus injection/ejection stages.
        assert packet.total_latency() >= MeshTopology(rows=4).manhattan_distance(0, 15)

    def test_single_hop_neighbor(self):
        network = MeshNetwork(MeshTopology(rows=4))
        packet = Packet(source=0, destination=1, size_flits=2, created_cycle=0)
        network.enqueue_packet(packet)
        run_cycles(network, 20)
        assert packet.is_delivered

    def test_all_flits_accounted_for(self):
        network = MeshNetwork(MeshTopology(rows=4))
        packets = [
            Packet(source=i, destination=(i + 5) % 16, size_flits=3, created_cycle=0)
            for i in range(8)
        ]
        for packet in packets:
            network.enqueue_packet(packet)
        run_cycles(network, 120)
        assert all(p.is_delivered for p in packets)
        assert network.in_flight_flits == 0
        assert network.queued_flits == 0


class TestWormholeBehaviour:
    def test_flits_arrive_in_order(self):
        network = MeshNetwork(MeshTopology(rows=4))
        packet = Packet(source=0, destination=12, size_flits=6, created_cycle=0)
        network.enqueue_packet(packet)
        run_cycles(network, 60)
        assert packet.is_delivered

    def test_two_packets_from_same_source_both_arrive(self):
        network = MeshNetwork(MeshTopology(rows=4))
        first = Packet(source=0, destination=3, size_flits=4, created_cycle=0)
        second = Packet(source=0, destination=12, size_flits=4, created_cycle=0)
        network.enqueue_packet(first)
        network.enqueue_packet(second)
        run_cycles(network, 80)
        assert first.is_delivered and second.is_delivered

    def test_converging_flows_both_delivered(self):
        network = MeshNetwork(MeshTopology(rows=4))
        a = Packet(source=0, destination=5, size_flits=4, created_cycle=0)
        b = Packet(source=10, destination=5, size_flits=4, created_cycle=0)
        network.enqueue_packet(a)
        network.enqueue_packet(b)
        run_cycles(network, 80)
        assert a.is_delivered and b.is_delivered


class TestBackpressureAndDrops:
    def test_source_queue_overflow_drops_packets(self):
        network = MeshNetwork(MeshTopology(rows=4), source_queue_capacity=8)
        accepted = 0
        for _ in range(10):
            if network.enqueue_packet(Packet(source=0, destination=15, size_flits=4)):
                accepted += 1
        assert accepted == 2
        assert network.dropped_packets == 8

    def test_boc_accumulates_along_route_only(self):
        network = MeshNetwork(MeshTopology(rows=4))
        packet = Packet(source=0, destination=3, size_flits=4, created_cycle=0)
        network.enqueue_packet(packet)
        run_cycles(network, 30)
        # Routers 1..3 receive the packet on their WEST input ports.
        assert network.router(1).boc(Direction.WEST) > 0
        assert network.router(2).boc(Direction.WEST) > 0
        # A router far from the route saw no traffic.
        assert network.router(12).boc(Direction.EAST) == 0

    def test_reset_boc_counters(self):
        network = MeshNetwork(MeshTopology(rows=4))
        network.enqueue_packet(Packet(source=0, destination=3, size_flits=4))
        run_cycles(network, 30)
        network.reset_boc_counters()
        assert all(
            router.boc(direction) == 0
            for router in network.routers
            for direction in Direction.cardinal()
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MeshNetwork(MeshTopology(rows=4), injection_bandwidth=0)
        with pytest.raises(ValueError):
            MeshNetwork(MeshTopology(rows=4), source_queue_capacity=0)


class TestMaliciousAccounting:
    def test_malicious_counters(self):
        network = MeshNetwork(MeshTopology(rows=4))
        network.enqueue_packet(
            Packet(source=0, destination=5, size_flits=2, is_malicious=True)
        )
        network.enqueue_packet(Packet(source=2, destination=9, size_flits=2))
        run_cycles(network, 40)
        assert network.stats.malicious_packets_created == 1
        assert network.stats.malicious_packets_delivered == 1
        assert network.stats.packets_delivered == 2
