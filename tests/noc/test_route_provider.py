"""Properties of the fault-aware :class:`RouteProvider`.

Four layers pin the routing abstraction underneath all three backends:

* **XY identity** — on a healthy mesh the west-first table with the
  ascending slot tie-break reproduces deterministic XY routing *exactly*
  (hop-for-hop), which is why installing a fault-free provider can never
  change a fingerprint;
* **turn-model safety** — every transition the table can take, under any
  fault set, obeys the west-first prohibitions (no 180° turns, no N→W or
  S→W).  West-first over a connected sub-mesh is provably deadlock-free,
  so this is the whole deadlock argument;
* **detour correctness** — routes around dead links/routers are valid
  neighbor walks that avoid every dead resource and are never shorter than
  the XY baseline;
* **degradation surface** — :class:`UnroutableError` carries the endpoint
  pair, dead resources are validated at construction, and ``detour_nodes``
  matches a brute-force enumeration of affected pairs.
"""

import numpy as np
import pytest

from repro.noc.route_provider import _ALLOWED, START, RouteProvider
from repro.noc.routing import UnroutableError, xy_next_direction, xy_route_path
from repro.noc.topology import Direction, MeshTopology

#: Slot order of the table's direction axis (LOCAL=0, E, N, W, S).
_SLOT_DIRS = (
    Direction.LOCAL,
    Direction.EAST,
    Direction.NORTH,
    Direction.WEST,
    Direction.SOUTH,
)


def _hop_direction(topology, a, b):
    ax, ay = topology.coordinates(a)
    bx, by = topology.coordinates(b)
    if bx == ax + 1:
        return Direction.EAST
    if bx == ax - 1:
        return Direction.WEST
    if by == ay + 1:
        return Direction.NORTH
    return Direction.SOUTH


def _assert_valid_walk(topology, provider, path, source, destination):
    assert path[0] == source and path[-1] == destination
    assert len(set(path)) == len(path), "route revisits a node"
    for a, b in zip(path, path[1:]):
        direction = _hop_direction(topology, a, b)
        assert topology.neighbor(a, direction) == b
        assert (a, direction) not in provider.dead_links, (
            f"route {source}->{destination} crosses dead link {a}->{direction}"
        )
        assert a not in provider.dead_routers
        assert b not in provider.dead_routers or b == destination


class TestFaultFreeIsExactlyXY:
    @pytest.mark.parametrize("rows", [3, 4, 5, 8])
    def test_all_pairs_route_identically(self, rows):
        topology = MeshTopology(rows=rows)
        provider = RouteProvider(topology)
        assert provider.detour_nodes == frozenset()
        assert bool(provider.routable_from_start.all())
        for source in range(topology.num_nodes):
            for destination in range(topology.num_nodes):
                if source == destination:
                    continue
                assert provider.route_path(source, destination) == xy_route_path(
                    topology, source, destination
                )
                assert provider.next_direction(
                    source, destination
                ) == xy_next_direction(topology, source, destination)


class TestWestFirstTurnModel:
    @staticmethod
    def _fault_sets(topology):
        node = topology.node_id(1, 1)
        yield RouteProvider(topology)
        yield RouteProvider(topology, dead_links=((node, Direction.NORTH),))
        yield RouteProvider(topology, dead_links=((node, Direction.EAST),))
        yield RouteProvider(
            topology,
            dead_links=((node, Direction.WEST), (node, Direction.SOUTH)),
        )
        yield RouteProvider(topology, dead_routers=(node,))

    @pytest.mark.parametrize("rows", [4, 6])
    def test_every_table_transition_is_allowed(self, rows):
        """No reachable transition takes a prohibited turn — under any fault.

        The table is indexed by (node, travel-state, destination); a hop in
        direction ``out`` moves the packet into travel-state ``out``, so
        checking every populated (state, out) cell checks every turn any
        packet can ever take.  ``_ALLOWED`` has no 180° pairs and no
        {N,S}→W entries, which is the west-first deadlock-freedom argument.
        """
        topology = MeshTopology(rows=rows)
        for provider in self._fault_sets(topology):
            table = np.asarray(provider.route_table3).reshape(
                topology.num_nodes, 5, topology.num_nodes
            )
            for state in range(5):
                outs = np.unique(table[:, state, :])
                for out in outs[outs > 0]:
                    assert int(out) in _ALLOWED[state], (
                        f"{provider!r}: state {state} allows out-slot {out}"
                    )

    def test_start_state_tie_break_is_xy(self):
        """From START the ascending-slot tie-break picks the X leg first."""
        topology = MeshTopology(rows=5)
        provider = RouteProvider(topology)
        # node (0,0) -> (3,3): east before north, every hop.
        path = provider.route_path(0, topology.node_id(3, 3))
        directions = [
            _hop_direction(topology, a, b) for a, b in zip(path, path[1:])
        ]
        assert directions == [Direction.EAST] * 3 + [Direction.NORTH] * 3


class TestDetours:
    @pytest.mark.parametrize("rows", [4, 6, 8])
    def test_single_dead_link_all_pairs(self, rows):
        topology = MeshTopology(rows=rows)
        node = topology.node_id(2, min(2, rows - 2))
        provider = RouteProvider(topology, dead_links=((node, Direction.NORTH),))
        assert not provider.link_is_live(node, Direction.NORTH)
        neighbor = topology.neighbor(node, Direction.NORTH)
        assert not provider.link_is_live(neighbor, Direction.SOUTH)
        for source in range(topology.num_nodes):
            for destination in range(topology.num_nodes):
                if source == destination:
                    continue
                path = provider.route_path(source, destination)
                _assert_valid_walk(topology, provider, path, source, destination)
                assert len(path) >= len(
                    xy_route_path(topology, source, destination)
                ), "a detour can never be shorter than the XY baseline"

    def test_dead_router_detours_and_isolates(self):
        """A dead router reroutes what west-first *can* reroute.

        West-first places every WEST hop before any N/S hop, so a source in
        the dead router's row east of it loses every destination at or
        beyond the dead column (its only westward corridor is its own row)
        — the turn model trades that connectivity for deadlock freedom.  Everything else must detour successfully, and the
        unroutable set must be exactly the predicted one (mirrored in
        ``routable_from_start``, which is what the backends' source-drop
        gates consume).
        """
        topology = MeshTopology(rows=5)
        dx, dy = 2, 2
        dead = topology.node_id(dx, dy)
        provider = RouteProvider(topology, dead_routers=(dead,))
        routable = provider.routable_from_start
        for source in range(topology.num_nodes):
            for destination in range(topology.num_nodes):
                if source == destination:
                    continue
                sx, sy = topology.coordinates(source)
                tx, _ty = topology.coordinates(destination)
                expect_unroutable = (
                    dead in (source, destination)
                    or (sy == dy and sx > dx and tx <= dx)
                )
                assert bool(routable[source, destination]) != expect_unroutable
                if expect_unroutable:
                    with pytest.raises(UnroutableError) as excinfo:
                        provider.route_path(source, destination)
                    assert excinfo.value.source == source
                    assert excinfo.value.destination == destination
                    continue
                path = provider.route_path(source, destination)
                _assert_valid_walk(topology, provider, path, source, destination)
                assert dead not in path

    def test_detour_nodes_matches_brute_force(self):
        """``detour_nodes`` equals the brute-force sweep over every pair."""
        topology = MeshTopology(rows=5)
        node = topology.node_id(2, 2)
        dead = (node, Direction.NORTH)
        provider = RouteProvider(topology, dead_links=(dead,))
        neighbor = topology.neighbor(*dead)
        expected: set[int] = set()
        for source in range(topology.num_nodes):
            for destination in range(topology.num_nodes):
                if source == destination:
                    continue
                xy = xy_route_path(topology, source, destination)
                crossings = {
                    (a, b) for a, b in zip(xy, xy[1:])
                }
                if (node, neighbor) not in crossings and (
                    neighbor,
                    node,
                ) not in crossings:
                    continue
                expected.update(
                    set(provider.route_path(source, destination)) - set(xy)
                )
        assert provider.detour_nodes == frozenset(expected)
        assert provider.detour_nodes, "the canonical dead link must cause detours"


class TestDegradationSurface:
    def test_unroutable_error_message(self):
        topology = MeshTopology(rows=4)
        provider = RouteProvider(topology, dead_routers=(5,))
        with pytest.raises(UnroutableError, match="no route from node 0 to node 5"):
            provider.route_path(0, 5)
        with pytest.raises(UnroutableError):
            provider.next_direction(0, 5)

    def test_routable_from_start_masks_dead_destinations(self):
        topology = MeshTopology(rows=4)
        dx, dy = 1, 1
        dead = topology.node_id(dx, dy)
        provider = RouteProvider(topology, dead_routers=(dead,))
        routable = provider.routable_from_start
        assert routable.shape == (topology.num_nodes, topology.num_nodes)
        assert not routable[:, dead].any()
        assert not routable[dead, :].any()
        for source in range(topology.num_nodes):
            for destination in range(topology.num_nodes):
                if dead in (source, destination) or source == destination:
                    continue
                sx, sy = topology.coordinates(source)
                tx, _ty = topology.coordinates(destination)
                # West-first connectivity law (see TestDetours): the only
                # westward corridor is the source row.
                cut = sy == dy and sx > dx and tx <= dx
                assert bool(routable[source, destination]) != cut

    def test_nonexistent_link_rejected(self):
        topology = MeshTopology(rows=4)
        top = topology.node_id(0, 3)
        with pytest.raises(ValueError, match="no NORTH link"):
            RouteProvider(topology, dead_links=((top, Direction.NORTH),))

    def test_describe_names_dead_resources(self):
        topology = MeshTopology(rows=4)
        provider = RouteProvider(
            topology, dead_links=((5, Direction.EAST),), dead_routers=(10,)
        )
        text = provider.describe()
        assert "10" in text
        assert provider.dead_routers == frozenset((10,))
