"""Fingerprint equivalence of the SoA and object simulator backends.

The ``soa`` backend is only allowed to be *faster* — every observable must
be bit-identical to the object model for the same seeds: feature frames
(VCO floats included), latency statistics, delivered-packet order, drop
counts, and whole closed-loop ``DefenseReport.as_dict()`` timelines.  These
tests sweep mesh size, FIR, multi-attack and quarantine/release transitions
so a behavioural divergence in any kernel path fails loudly.
"""

import numpy as np
import pytest

from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.monitor.features import FeatureKind
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic, make_synthetic_traffic

BACKENDS = ("soa", "object")


def _packet_key(packet):
    return (
        packet.source,
        packet.destination,
        packet.size_flits,
        packet.created_cycle,
        packet.injected_cycle,
        packet.ejected_cycle,
        packet.is_malicious,
    )


def _flooded_simulator(backend, rows, fir, num_vcs=4, seed=0, attackers=None):
    simulator = NoCSimulator(
        SimulationConfig(
            rows=rows, warmup_cycles=16, num_vcs=num_vcs, seed=seed, backend=backend
        )
    )
    simulator.add_source(
        UniformRandomTraffic(simulator.topology, injection_rate=0.05, seed=seed + 1)
    )
    if fir > 0.0:
        last = rows * rows - 1
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(
                    attackers=attackers or (last, 3), victim=1, fir=fir
                ),
                simulator.topology,
                seed=seed + 2,
            )
        )
    return simulator


def _run_with_monitor(backend, rows, fir, cycles, num_vcs=4):
    simulator = _flooded_simulator(backend, rows, fir, num_vcs=num_vcs)
    monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=64)).attach(
        simulator
    )
    simulator.run(cycles)
    return simulator, monitor


def assert_same_samples(monitor_a, monitor_b):
    assert len(monitor_a.samples) == len(monitor_b.samples)
    for sample_a, sample_b in zip(monitor_a.samples, monitor_b.samples):
        assert sample_a.cycle == sample_b.cycle
        assert sample_a.attack_active == sample_b.attack_active
        for kind in FeatureKind:
            for direction in Direction.cardinal():
                values_a = sample_a.feature(kind).frames[direction].values
                values_b = sample_b.feature(kind).frames[direction].values
                assert np.array_equal(values_a, values_b), (
                    sample_a.cycle,
                    kind,
                    direction,
                )


def assert_same_stats(simulator_a, simulator_b):
    stats_a, stats_b = simulator_a.stats, simulator_b.stats
    for field in (
        "cycles",
        "packets_created",
        "packets_injected",
        "packets_delivered",
        "flits_delivered",
        "malicious_packets_created",
        "malicious_packets_delivered",
    ):
        assert getattr(stats_a, field) == getattr(stats_b, field), field
    assert [_packet_key(p) for p in stats_a.delivered] == [
        _packet_key(p) for p in stats_b.delivered
    ]
    assert simulator_a.network.dropped_packets == simulator_b.network.dropped_packets
    assert (
        simulator_a.latency(benign_only=True).as_dict()
        == simulator_b.latency(benign_only=True).as_dict()
    )
    assert simulator_a.latency(benign_only=False).as_dict() == simulator_b.latency(
        benign_only=False
    ).as_dict()


class TestFrameFingerprints:
    @pytest.mark.parametrize("rows", [4, 6, 8, 16])
    def test_mesh_size_sweep(self, rows):
        """Same seeds → same frames and stats on every mesh size."""
        cycles = 400 if rows < 16 else 260
        soa = _run_with_monitor("soa", rows, fir=0.8, cycles=cycles)
        obj = _run_with_monitor("object", rows, fir=0.8, cycles=cycles)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])

    @pytest.mark.parametrize("fir", [0.0, 0.2, 0.5, 1.0])
    def test_fir_sweep(self, fir):
        """Equivalence from benign-only up to the saturation regime."""
        soa = _run_with_monitor("soa", 6, fir=fir, cycles=500)
        obj = _run_with_monitor("object", 6, fir=fir, cycles=500)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])

    @pytest.mark.parametrize("num_vcs", [1, 3, 4])
    def test_vc_configurations(self, num_vcs):
        """Odd VC counts exercise the non-exact occupancy accumulation."""
        soa = _run_with_monitor("soa", 5, fir=0.6, cycles=400, num_vcs=num_vcs)
        obj = _run_with_monitor("object", 5, fir=0.6, cycles=400, num_vcs=num_vcs)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])

    @pytest.mark.parametrize("pattern", ["tornado", "bit_complement"])
    def test_deterministic_patterns(self, pattern):
        """Table-memoised synthetic patterns stay identical across backends."""

        def build(backend):
            simulator = NoCSimulator(
                SimulationConfig(rows=6, warmup_cycles=0, seed=0, backend=backend)
            )
            simulator.add_source(
                make_synthetic_traffic(
                    pattern, simulator.topology, injection_rate=0.1, seed=3
                )
            )
            simulator.run(400)
            return simulator

        assert_same_stats(build("soa"), build("object"))


class TestDefenseHookFingerprints:
    def test_quarantine_release_transitions(self):
        """Throttle, quarantine+flush, release and drain stay identical."""

        def churn(backend):
            simulator = _flooded_simulator(backend, 6, fir=0.9)
            simulator.run(250)
            simulator.throttle_node(34, 0.25)
            simulator.run(100)
            simulator.quarantine_node(3)
            flushed = simulator.network.flush_source_queue(3)
            simulator.run(150)
            simulator.release_node(34)
            simulator.release_node(3)
            simulator.run(200)
            drained = simulator.drain(4000)
            return simulator, flushed, drained

        soa, flushed_a, drained_a = churn("soa")
        obj, flushed_b, drained_b = churn("object")
        assert flushed_a == flushed_b
        assert drained_a == drained_b
        assert_same_stats(soa, obj)

    def test_fractional_throttle_credit(self):
        """The credit accumulator admits identical flit schedules."""

        def throttled(backend):
            simulator = _flooded_simulator(backend, 4, fir=1.0, attackers=(15,))
            simulator.throttle_node(15, 0.3)
            simulator.run(400)
            return simulator

        assert_same_stats(throttled("soa"), throttled("object"))


class TestClosedLoopFingerprints:
    @pytest.mark.parametrize("num_attackers", [1, 2])
    def test_defense_report_identical(self, trained_pipeline, num_attackers):
        """End-to-end guarded episodes produce the same DefenseReport dict."""
        fence = trained_pipeline

        def episode(backend):
            simulator = NoCSimulator(
                SimulationConfig(rows=6, warmup_cycles=16, seed=0, backend=backend)
            )
            simulator.add_source(
                UniformRandomTraffic(
                    simulator.topology, injection_rate=0.04, seed=5
                )
            )
            attackers = (34, 5)[:num_attackers]
            simulator.add_source(
                FloodingAttacker(
                    FloodingConfig(
                        attackers=attackers,
                        victim=1,
                        fir=0.8,
                        start_cycle=200,
                        end_cycle=900,
                    ),
                    simulator.topology,
                    seed=6,
                )
            )
            guard = DL2FenceGuard(
                fence,
                MitigationPolicy.quarantine(
                    engage_after=1, release_after=2, flush_queue=True
                ),
                attack_start=200,
                attack_end=900,
                true_attackers=attackers,
            )
            guard.attach(
                simulator, monitor_config=MonitorConfig(sample_period=100)
            )
            simulator.run(1200)
            return guard.report.as_dict()

        assert episode("soa") == episode("object")
