"""Unit and property-based tests for XY routing and reverse deduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import (
    reverse_xy_sources,
    xy_next_direction,
    xy_route_path,
    xy_route_victims,
)
from repro.noc.topology import Direction, MeshTopology


class TestNextDirection:
    def test_arrived(self):
        topo = MeshTopology(rows=4)
        assert xy_next_direction(topo, 5, 5) is Direction.LOCAL

    def test_x_before_y(self):
        topo = MeshTopology(rows=4)
        # Destination is north-east: X resolves first, so go EAST.
        assert xy_next_direction(topo, 0, 15) is Direction.EAST
        # Same column: go NORTH.
        assert xy_next_direction(topo, 3, 15) is Direction.NORTH

    def test_west_and_south(self):
        topo = MeshTopology(rows=4)
        assert xy_next_direction(topo, 15, 12) is Direction.WEST
        assert xy_next_direction(topo, 12, 0) is Direction.SOUTH


class TestRoutePath:
    def test_same_row(self):
        topo = MeshTopology(rows=4)
        assert xy_route_path(topo, 0, 3) == [0, 1, 2, 3]

    def test_dogleg_route(self):
        topo = MeshTopology(rows=4)
        # From (0,0) to (2,2): east twice, then north twice.
        assert xy_route_path(topo, 0, 10) == [0, 1, 2, 6, 10]

    def test_single_node(self):
        topo = MeshTopology(rows=4)
        assert xy_route_path(topo, 7, 7) == [7]

    @given(rows=st.integers(3, 12), a=st.integers(0, 200), b=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_path_is_minimal_and_connected(self, rows, a, b):
        topo = MeshTopology(rows=rows)
        a, b = a % topo.num_nodes, b % topo.num_nodes
        path = xy_route_path(topo, a, b)
        assert path[0] == a
        assert path[-1] == b
        assert len(path) == topo.manhattan_distance(a, b) + 1
        for u, v in zip(path[:-1], path[1:]):
            assert v in topo.neighbors(u).values()

    @given(rows=st.integers(3, 12), a=st.integers(0, 200), b=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_path_has_at_most_one_turn(self, rows, a, b):
        topo = MeshTopology(rows=rows)
        a, b = a % topo.num_nodes, b % topo.num_nodes
        path = xy_route_path(topo, a, b)
        rows_seen = [topo.coordinates(n)[1] for n in path]
        # Under XY routing the Y coordinate changes only in the final leg.
        changes = sum(1 for r1, r2 in zip(rows_seen[:-1], rows_seen[1:]) if r1 != r2)
        cols_seen = [topo.coordinates(n)[0] for n in path]
        col_changes = sum(1 for c1, c2 in zip(cols_seen[:-1], cols_seen[1:]) if c1 != c2)
        assert changes + col_changes == len(path) - 1


class TestRouteVictims:
    def test_excludes_source_by_default(self):
        topo = MeshTopology(rows=4)
        assert xy_route_victims(topo, 0, 3) == [1, 2, 3]

    def test_include_source(self):
        topo = MeshTopology(rows=4)
        assert xy_route_victims(topo, 0, 3, include_source=True) == [0, 1, 2, 3]


class TestReverseXY:
    def test_east_attacker(self):
        # Attacker east of the victims in the same row: candidate is max + 1.
        topo = MeshTopology(rows=4)
        assert reverse_xy_sources(topo, [1, 2], Direction.EAST) == [3]

    def test_west_attacker(self):
        topo = MeshTopology(rows=4)
        assert reverse_xy_sources(topo, [1, 2], Direction.WEST) == [0]

    def test_north_attacker(self):
        topo = MeshTopology(rows=4)
        assert reverse_xy_sources(topo, [2, 6], Direction.NORTH) == [10]

    def test_south_attacker(self):
        topo = MeshTopology(rows=4)
        assert reverse_xy_sources(topo, [10, 6], Direction.SOUTH) == [2]

    def test_candidate_off_mesh_is_dropped(self):
        topo = MeshTopology(rows=4)
        assert reverse_xy_sources(topo, [3], Direction.EAST) == []
        assert reverse_xy_sources(topo, [12, 13], Direction.NORTH) == []

    def test_candidate_wrapping_row_is_dropped(self):
        topo = MeshTopology(rows=4)
        # min(victims)=4 is at the west edge; 3 is in the previous row.
        assert reverse_xy_sources(topo, [4, 5], Direction.WEST) == []

    def test_empty_victims(self):
        topo = MeshTopology(rows=4)
        assert reverse_xy_sources(topo, [], Direction.EAST) == []

    def test_local_direction_rejected(self):
        topo = MeshTopology(rows=4)
        with pytest.raises(ValueError):
            reverse_xy_sources(topo, [1], Direction.LOCAL)

    @given(rows=st.integers(4, 12), attacker=st.integers(0, 200), victim=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_reverse_recovers_straight_line_attacker(self, rows, attacker, victim):
        """For straight-line routes the reverse rule recovers the attacker."""
        topo = MeshTopology(rows=rows)
        attacker, victim = attacker % topo.num_nodes, victim % topo.num_nodes
        ax, ay = topo.coordinates(attacker)
        vx, vy = topo.coordinates(victim)
        if attacker == victim or (ax != vx and ay != vy):
            return  # only straight-line scenarios in this property
        victims = xy_route_victims(topo, attacker, victim)
        if ax > vx:
            direction = Direction.EAST
        elif ax < vx:
            direction = Direction.WEST
        elif ay > vy:
            direction = Direction.NORTH
        else:
            direction = Direction.SOUTH
        assert reverse_xy_sources(topo, victims, direction) == [attacker]
