"""Fingerprint equivalence of the backends under data-plane faults.

The fault-aware routing layer must not cost the repo its central
invariant: for the same seeds and the same fault schedule, the ``soa``
backend remains bit-identical to the object model — feature frames (VCO
floats included), delivered-packet order, drop/kill/unroutable counters,
latency statistics, and the monitor metadata that names detour carriers
and dead routers.  The matrix covers a mid-episode link kill, a dead
router (which strands west-first-unreachable pairs), a kill at cycle 0
(the enqueue gates see the fault before any packet moves), on-the-fly
routing with the table cache disabled, multi-fault escalation, and the
episode-batched backend sharing one fault across its lanes.
"""

import numpy as np
import pytest

from repro.faults import dead_link_for
from repro.monitor.features import FeatureKind
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.batch_sim import BatchedNoCSimulator
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.topology import Direction
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

SAMPLE_PERIOD = 64


def _packet_key(packet):
    return (
        packet.source,
        packet.destination,
        packet.size_flits,
        packet.created_cycle,
        packet.injected_cycle,
        packet.ejected_cycle,
        packet.is_malicious,
    )


def _flooded_simulator(backend, rows, fir=0.8, seed=0):
    simulator = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=16, seed=seed, backend=backend)
    )
    simulator.add_source(
        UniformRandomTraffic(simulator.topology, injection_rate=0.05, seed=seed + 1)
    )
    if fir > 0.0:
        last = rows * rows - 1
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(attackers=(last, 3), victim=1, fir=fir),
                simulator.topology,
                seed=seed + 2,
            )
        )
    return simulator


def _run(backend, rows, cycles, schedule, fir=0.8, seed=0):
    """One monitored episode; ``schedule`` installs the fault timeline."""
    simulator = _flooded_simulator(backend, rows, fir=fir, seed=seed)
    monitor = GlobalPerformanceMonitor(
        MonitorConfig(sample_period=SAMPLE_PERIOD)
    ).attach(simulator)
    schedule(simulator)
    simulator.run(cycles)
    return simulator, monitor


def assert_same_samples(monitor_a, monitor_b):
    assert len(monitor_a.samples) == len(monitor_b.samples) > 0
    for sample_a, sample_b in zip(monitor_a.samples, monitor_b.samples):
        assert sample_a.cycle == sample_b.cycle
        assert sample_a.attack_active == sample_b.attack_active
        # Monitor metadata carries the degradation annotations the guard
        # consumes (detour carriers, unobservable routers) — they must be
        # fingerprint-identical too, or the guards would diverge.
        assert sample_a.metadata == sample_b.metadata, sample_a.cycle
        for kind in FeatureKind:
            for direction in Direction.cardinal():
                values_a = sample_a.feature(kind).frames[direction].values
                values_b = sample_b.feature(kind).frames[direction].values
                assert np.array_equal(values_a, values_b), (
                    sample_a.cycle,
                    kind,
                    direction,
                )


def assert_same_stats(simulator_a, simulator_b):
    stats_a, stats_b = simulator_a.stats, simulator_b.stats
    for field in (
        "cycles",
        "packets_created",
        "packets_injected",
        "packets_delivered",
        "flits_delivered",
        "malicious_packets_created",
        "malicious_packets_delivered",
    ):
        assert getattr(stats_a, field) == getattr(stats_b, field), field
    assert [_packet_key(p) for p in stats_a.delivered] == [
        _packet_key(p) for p in stats_b.delivered
    ]
    net_a, net_b = simulator_a.network, simulator_b.network
    assert net_a.dropped_packets == net_b.dropped_packets
    assert net_a.killed_packets == net_b.killed_packets
    assert net_a.unroutable_packets == net_b.unroutable_packets
    for benign_only in (True, False):
        assert (
            simulator_a.latency(benign_only=benign_only).as_dict()
            == simulator_b.latency(benign_only=benign_only).as_dict()
        )


def _detour_samples(monitor):
    return [
        sample
        for sample in monitor.samples
        if sample.metadata.get("detour_nodes")
    ]


class TestMidEpisodeLinkKill:
    @pytest.mark.parametrize("rows", [4, 8])
    def test_link_kill_is_backend_identical(self, rows):
        cycles = 600 if rows < 8 else 450

        def schedule(simulator):
            node = dead_link_for(simulator.topology)
            simulator.schedule_data_fault(
                300, dead_links=((node, Direction.NORTH),)
            )

        soa = _run("soa", rows, cycles, schedule)
        obj = _run("object", rows, cycles, schedule)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])
        # The comparison must not be vacuous: post-kill windows really do
        # carry detour annotations, and pre-kill windows do not.
        flagged = _detour_samples(soa[1])
        assert flagged and all(s.cycle > 300 for s in flagged)

    def test_dead_router_is_backend_identical(self):
        """A dead router kills in-flight packets and strands west-first
        unreachable pairs — both accounting paths must agree."""

        def schedule(simulator):
            dead = simulator.topology.node_id(2, 2)
            simulator.schedule_data_fault(300, dead_routers=(dead,))

        soa = _run("soa", 5, 650, schedule, seed=4)
        obj = _run("object", 5, 650, schedule, seed=4)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])
        assert soa[0].network.unroutable_packets > 0
        assert 12 in soa[1].samples[-1].metadata.get("unobservable_nodes", ())


class TestEdgeSchedules:
    def test_kill_at_cycle_zero(self):
        """A fault live from the first cycle exercises the source-drop
        gates on traffic that never saw a healthy mesh."""

        def schedule(simulator):
            node = dead_link_for(simulator.topology)
            simulator.schedule_data_fault(
                0, dead_links=((node, Direction.NORTH),)
            )

        soa = _run("soa", 5, 500, schedule, seed=2)
        obj = _run("object", 5, 500, schedule, seed=2)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])
        assert soa[0].route_provider is not None

    def test_multi_fault_escalation(self):
        """Link death followed by a router death: providers accumulate."""

        def schedule(simulator):
            topology = simulator.topology
            simulator.schedule_data_fault(
                200, dead_links=((topology.node_id(2, 2), Direction.NORTH),)
            )
            simulator.schedule_data_fault(
                400, dead_routers=(topology.node_id(1, 3),)
            )

        soa = _run("soa", 5, 700, schedule, seed=6)
        obj = _run("object", 5, 700, schedule, seed=6)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])
        provider = soa[0].route_provider
        assert provider.dead_links and provider.dead_routers

    def test_on_the_fly_routing_leg(self, monkeypatch):
        """With the route-table cache disabled both backends route every
        hop on the fly — same fingerprints, same fault behaviour."""
        monkeypatch.setenv("REPRO_XY_TABLE_MAX_NODES", "0")

        def schedule(simulator):
            node = dead_link_for(simulator.topology)
            simulator.schedule_data_fault(
                250, dead_links=((node, Direction.NORTH),)
            )

        soa = _run("soa", 5, 500, schedule, seed=8)
        obj = _run("object", 5, 500, schedule, seed=8)
        assert_same_samples(soa[1], obj[1])
        assert_same_stats(soa[0], obj[0])


class TestLocalInjectionTelemetry:
    """The ``local_boc`` annotation separating carriers from injectors."""

    @pytest.mark.parametrize("backend", ["soa", "object"])
    def test_faulted_windows_carry_local_boc(self, backend):
        def schedule(simulator):
            node = dead_link_for(simulator.topology)
            simulator.schedule_data_fault(
                300, dead_links=((node, Direction.NORTH),)
            )

        # Colluder-grade regime: light benign load, a mild flood.  The
        # meter discriminates *injection*, so the scenario must not
        # saturate the mesh — a saturating flood backpressures its own
        # LOCAL port and the victim column chokes everyone's ratios.
        simulator = NoCSimulator(
            SimulationConfig(rows=8, warmup_cycles=16, seed=0, backend=backend)
        )
        simulator.add_source(
            UniformRandomTraffic(simulator.topology, injection_rate=0.02, seed=1)
        )
        flooder = simulator.topology.num_nodes - 1
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(attackers=(flooder,), victim=1, fir=0.25),
                simulator.topology,
                seed=2,
            )
        )
        monitor = GlobalPerformanceMonitor(
            MonitorConfig(sample_period=SAMPLE_PERIOD)
        ).attach(simulator)
        schedule(simulator)
        simulator.run(450)
        num_nodes = simulator.topology.num_nodes
        pre = [s for s in monitor.samples if s.cycle <= 300]
        post = [s for s in monitor.samples if s.cycle > 300]
        assert pre and post
        # Healthy-mesh windows carry no annotation; faulted windows carry
        # one integer per node.
        assert all("local_boc" not in s.metadata for s in pre)
        for sample in post:
            local = sample.metadata["local_boc"]
            assert len(local) == num_nodes
            assert all(isinstance(v, int) and v >= 0 for v in local)
        # The meter must actually discriminate: the flooder's LOCAL-port
        # activity dwarfs the benign median, every window.
        for sample in post:
            local = sample.metadata["local_boc"]
            median = sorted(local)[num_nodes // 2]
            assert local[flooder] > 2 * max(median, 1)


class TestBatchedBackendUnderFault:
    def test_batched_lanes_match_solo_runs(self):
        """A fault scheduled on the batched simulator hits every lane at
        the same cycle and each lane stays bit-identical to a solo run
        with the same seeds and the same schedule."""
        rows, cycles, kill = 4, 500, 260
        episodes = [("flood", 7), ("benign", 11)]

        def wire(simulator, variant, seed):
            simulator.add_source(
                UniformRandomTraffic(
                    simulator.topology, injection_rate=0.05, seed=seed + 1
                )
            )
            if variant == "flood":
                last = rows * rows - 1
                simulator.add_source(
                    FloodingAttacker(
                        FloodingConfig(attackers=(last, 3), victim=1, fir=0.8),
                        simulator.topology,
                        seed=seed + 2,
                    )
                )
            return GlobalPerformanceMonitor(
                MonitorConfig(sample_period=SAMPLE_PERIOD)
            ).attach(simulator)

        batched = BatchedNoCSimulator(
            SimulationConfig(rows=rows, warmup_cycles=16, backend="soa"),
            episodes=len(episodes),
        )
        monitors = [
            wire(batched.lane(index), variant, seed)
            for index, (variant, seed) in enumerate(episodes)
        ]
        node = dead_link_for(batched.topology)
        batched.schedule_data_fault(kill, dead_links=((node, Direction.NORTH),))
        batched.run(cycles)

        solo_killed = 0
        solo_unroutable = 0
        for index, (variant, seed) in enumerate(episodes):
            solo = NoCSimulator(
                SimulationConfig(
                    rows=rows, warmup_cycles=16, backend="soa", seed=seed
                )
            )
            solo_monitor = wire(solo, variant, seed)
            solo.schedule_data_fault(kill, dead_links=((node, Direction.NORTH),))
            solo.run(cycles)
            assert_same_samples(monitors[index], solo_monitor)
            lane = batched.lane(index)
            # Per-lane fingerprint (counters, delivery order, drops).
            stats_a, stats_b = lane.stats, solo.stats
            for field in (
                "cycles",
                "packets_created",
                "packets_injected",
                "packets_delivered",
                "flits_delivered",
                "malicious_packets_created",
                "malicious_packets_delivered",
            ):
                assert getattr(stats_a, field) == getattr(stats_b, field), field
            assert [_packet_key(p) for p in stats_a.delivered] == [
                _packet_key(p) for p in stats_b.delivered
            ]
            assert lane.network.dropped_packets == solo.network.dropped_packets
            for benign_only in (True, False):
                assert (
                    lane.latency(benign_only=benign_only).as_dict()
                    == solo.latency(benign_only=benign_only).as_dict()
                )
            solo_killed += solo.network.killed_packets
            solo_unroutable += solo.network.unroutable_packets

        # Kill/unroutable accounting aggregates across the batch exactly.
        assert batched.network.killed_packets == solo_killed
        assert batched.network.unroutable_packets == solo_unroutable
        assert batched.route_provider is not None
