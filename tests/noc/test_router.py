"""Unit tests for the router, input ports and virtual channels."""

import pytest

from repro.noc.packet import Packet
from repro.noc.router import InputPort, Router, VirtualChannel
from repro.noc.topology import Direction, MeshTopology


def flits_of(source=0, destination=1, size=3, malicious=False):
    return Packet(
        source=source, destination=destination, size_flits=size, is_malicious=malicious
    ).to_flits()


class TestVirtualChannel:
    def test_head_allocates_and_tail_releases(self):
        vc = VirtualChannel(depth=4)
        head, body, tail = flits_of(size=3)
        vc.push(head)
        assert vc.occupied
        assert vc.allocated_packet == head.packet.packet_id
        vc.push(body)
        vc.push(tail)
        assert vc.pop() is head
        assert vc.pop() is body
        assert vc.pop() is tail
        assert not vc.occupied
        assert vc.allocated_packet is None

    def test_rejects_foreign_body_flit(self):
        vc = VirtualChannel(depth=4)
        head_a = flits_of()[0]
        body_b = flits_of()[1]
        vc.push(head_a)
        assert not vc.can_accept(body_b)
        with pytest.raises(RuntimeError):
            vc.push(body_b)

    def test_rejects_second_head_while_occupied(self):
        vc = VirtualChannel(depth=4)
        vc.push(flits_of()[0])
        other_head = flits_of(destination=2)[0]
        assert not vc.can_accept(other_head)

    def test_depth_limit(self):
        vc = VirtualChannel(depth=2)
        head, body, tail = flits_of(size=3)
        vc.push(head)
        vc.push(body)
        assert not vc.has_space
        assert not vc.can_accept(tail)

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            VirtualChannel(depth=2).pop()

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            VirtualChannel(depth=0)


class TestInputPort:
    def test_vco_counts_occupied_vcs(self):
        port = InputPort(Direction.EAST, num_vcs=4, vc_depth=4)
        assert port.instantaneous_occupancy == 0.0
        head = flits_of()[0]
        vc = port.free_vc_for(head)
        port.write_flit(head, vc)
        assert port.instantaneous_occupancy == 0.25

    def test_windowed_vco_averages_over_cycles(self):
        port = InputPort(Direction.EAST, num_vcs=4, vc_depth=4)
        port.accumulate_occupancy()  # empty -> 0.0
        head = flits_of()[0]
        port.write_flit(head, port.free_vc_for(head))
        port.accumulate_occupancy()  # one VC busy -> 0.25
        assert port.vc_occupancy == pytest.approx(0.125)

    def test_reset_clears_windowed_stats(self):
        port = InputPort(Direction.EAST, num_vcs=2, vc_depth=2)
        head = flits_of()[0]
        port.write_flit(head, port.free_vc_for(head))
        port.accumulate_occupancy()
        port.reset_counters()
        assert port.buffer_operation_count == 0
        assert port.occupancy_samples == 0

    def test_boc_counts_reads_and_writes(self):
        port = InputPort(Direction.EAST, num_vcs=2, vc_depth=4)
        head, body, tail = flits_of(size=3)
        vc = port.free_vc_for(head)
        port.write_flit(head, vc)
        port.write_flit(body, vc)
        port.read_flit(vc)
        assert port.buffer_writes == 2
        assert port.buffer_reads == 1
        assert port.buffer_operation_count == 3

    def test_free_vc_prefers_allocated_vc_for_body(self):
        port = InputPort(Direction.EAST, num_vcs=2, vc_depth=4)
        head, body, _ = flits_of(size=3)
        vc = port.free_vc_for(head)
        port.write_flit(head, vc)
        assert port.free_vc_for(body) is vc

    def test_free_vc_none_when_full(self):
        port = InputPort(Direction.EAST, num_vcs=1, vc_depth=1)
        head = flits_of()[0]
        port.write_flit(head, port.free_vc_for(head))
        other = flits_of(destination=3)[0]
        assert port.free_vc_for(other) is None

    def test_invalid_vc_count(self):
        with pytest.raises(ValueError):
            InputPort(Direction.EAST, num_vcs=0, vc_depth=4)


class TestRouter:
    def test_interior_router_has_five_input_ports(self):
        topo = MeshTopology(rows=4)
        router = Router(5, topo)
        assert set(router.input_ports) == {Direction.LOCAL, *Direction.cardinal()}

    def test_corner_router_has_three_input_ports(self):
        topo = MeshTopology(rows=4)
        router = Router(0, topo)
        assert set(router.input_ports) == {
            Direction.LOCAL,
            Direction.EAST,
            Direction.NORTH,
        }

    def test_vco_boc_default_zero_for_missing_ports(self):
        topo = MeshTopology(rows=4)
        router = Router(0, topo)
        assert router.vco(Direction.WEST) == 0.0
        assert router.boc(Direction.SOUTH) == 0

    def test_reset_counters_propagates(self):
        topo = MeshTopology(rows=4)
        router = Router(5, topo)
        port = router.input_ports[Direction.EAST]
        head = flits_of()[0]
        port.write_flit(head, port.free_vc_for(head))
        router.reset_counters()
        assert router.boc(Direction.EAST) == 0

    def test_accumulate_occupancy_covers_all_ports(self):
        topo = MeshTopology(rows=4)
        router = Router(5, topo)
        router.accumulate_occupancy()
        assert all(p.occupancy_samples == 1 for p in router.input_ports.values())
