"""On-the-fly XY routing past the route-table cut-over (large-mesh path).

The SoA backend's precomputed next-hop table is O(nodes²); past 48x48 the
switch kernel derives output directions from coordinates instead.  These
tests force the on-the-fly path on small meshes (``REPRO_XY_TABLE_MAX_NODES=0``)
and pin it behavior-identical to both the table path and the object
reference model, then smoke-test a 64x64 mesh — the scale the table would
have needed ~85 MB for.
"""

import numpy as np
import pytest

from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.soa import DEFAULT_XY_TABLE_MAX_NODES, mesh_tables
from repro.noc.topology import MeshTopology
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

from .test_soa_equivalence import assert_same_samples, assert_same_stats


def _flooded(backend, rows=6, cycles=450, seed=0):
    simulator = NoCSimulator(
        SimulationConfig(rows=rows, warmup_cycles=16, seed=seed, backend=backend)
    )
    simulator.add_source(
        UniformRandomTraffic(simulator.topology, injection_rate=0.05, seed=seed + 1)
    )
    simulator.add_source(
        FloodingAttacker(
            FloodingConfig(attackers=(rows * rows - 1, 3), victim=1, fir=0.8),
            simulator.topology,
            seed=seed + 2,
        )
    )
    monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=64)).attach(
        simulator
    )
    simulator.run(cycles)
    return simulator, monitor


class TestOnTheFlyEquivalence:
    def test_forced_onfly_matches_table_path(self, monkeypatch):
        """REPRO_XY_TABLE_MAX_NODES=0 must not change a single observable."""
        monkeypatch.setenv("REPRO_XY_TABLE_MAX_NODES", "0")
        onfly, onfly_monitor = _flooded("soa")
        assert onfly.network._route_slot is None
        assert onfly.network._tables.route is None
        monkeypatch.delenv("REPRO_XY_TABLE_MAX_NODES")
        table, table_monitor = _flooded("soa")
        assert table.network._route_slot is not None
        assert_same_samples(onfly_monitor, table_monitor)
        assert_same_stats(onfly, table)

    def test_forced_onfly_matches_object_backend(self, monkeypatch):
        """The coordinate kernel is fingerprint-identical to the reference model."""
        monkeypatch.setenv("REPRO_XY_TABLE_MAX_NODES", "0")
        onfly, onfly_monitor = _flooded("soa")
        obj, obj_monitor = _flooded("object")
        assert_same_samples(onfly_monitor, obj_monitor)
        assert_same_stats(onfly, obj)

    def test_tables_cache_keyed_by_cutover(self, monkeypatch):
        """Flipping the cut-over must not serve a stale cached table set."""
        topology = MeshTopology(rows=5)
        monkeypatch.setenv("REPRO_XY_TABLE_MAX_NODES", "0")
        without = mesh_tables(topology)
        assert without.route is None
        monkeypatch.delenv("REPRO_XY_TABLE_MAX_NODES")
        with_table = mesh_tables(topology)
        assert with_table.route is not None
        assert np.array_equal(without.x, with_table.x)
        assert np.array_equal(without.y, with_table.y)


class TestLargeMeshSmoke:
    def test_cutover_default(self):
        assert DEFAULT_XY_TABLE_MAX_NODES == 48 * 48

    def test_64x64_routes_without_quadratic_table(self):
        """A 64x64 SoA mesh runs a flood without building the O(N²) table."""
        simulator = NoCSimulator(
            SimulationConfig(rows=64, warmup_cycles=0, seed=0, backend="soa")
        )
        assert simulator.network._route_slot is None
        assert simulator.network._tables.route is None
        victim = simulator.topology.node_id(1, 1)
        attacker = simulator.topology.node_id(62, 62)
        simulator.add_source(
            UniformRandomTraffic(simulator.topology, injection_rate=0.01, seed=1)
        )
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(attackers=(attacker,), victim=victim, fir=0.8),
                simulator.topology,
                seed=2,
            )
        )
        simulator.run(300)
        assert simulator.stats.packets_delivered > 0
        assert simulator.stats.malicious_packets_delivered > 0
        # XY delivery correctness: every delivered packet reached its target.
        for packet in simulator.stats.delivered:
            assert packet.ejected_cycle is not None
