"""Backend selection (``REPRO_SIM_BACKEND``) and SoA compatibility surface."""

import numpy as np
import pytest

from repro.monitor.features import FeatureKind, extract_feature_frame
from repro.noc.backend import BACKENDS, DEFAULT_BACKEND, build_network, resolve_backend
from repro.noc.network import MeshNetwork
from repro.noc.packet import Packet
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.soa import SoAMeshNetwork
from repro.noc.topology import Direction, MeshTopology
from repro.traffic.synthetic import UniformRandomTraffic


class TestResolveBackend:
    def test_default_is_soa(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        assert resolve_backend() == DEFAULT_BACKEND == "soa"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_environment_round_trip(self, monkeypatch, name):
        """REPRO_SIM_BACKEND drives simulator construction end to end."""
        monkeypatch.setenv("REPRO_SIM_BACKEND", name)
        assert resolve_backend() == name
        simulator = NoCSimulator(SimulationConfig(rows=4))
        assert simulator.backend == name
        expected = SoAMeshNetwork if name == "soa" else MeshNetwork
        assert isinstance(simulator.network, expected)

    def test_environment_is_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "  OBJECT ")
        assert resolve_backend() == "object"

    def test_explicit_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "object")
        simulator = NoCSimulator(SimulationConfig(rows=4, backend="soa"))
        assert isinstance(simulator.network, SoAMeshNetwork)

    def test_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "garnet")
        with pytest.raises(ValueError, match="garnet"):
            resolve_backend()
        with pytest.raises(ValueError):
            SimulationConfig(rows=4, backend="garnet")

    def test_build_network_dispatch(self):
        topology = MeshTopology(rows=4)
        assert isinstance(build_network(topology, backend="soa"), SoAMeshNetwork)
        assert isinstance(build_network(topology, backend="object"), MeshNetwork)


class TestSoACompatibilitySurface:
    """The object-backend-facing views the monitor/defense/tests rely on."""

    def _network(self) -> SoAMeshNetwork:
        return SoAMeshNetwork(MeshTopology(rows=4))

    def test_validation_matches_object_backend(self):
        topology = MeshTopology(rows=4)
        with pytest.raises(ValueError):
            SoAMeshNetwork(topology, injection_bandwidth=0)
        with pytest.raises(ValueError):
            SoAMeshNetwork(topology, source_queue_capacity=0)
        network = self._network()
        with pytest.raises(ValueError):
            network.set_injection_limit(0, 1.5)
        with pytest.raises(ValueError):
            network.set_injection_limit(99, 0.5)

    def test_source_queue_views_report_lengths(self):
        network = self._network()
        assert len(network.source_queues[5]) == 0
        network.enqueue_packet(Packet(source=5, destination=0, size_flits=3))
        assert len(network.source_queues[5]) == 3
        assert network.queued_flits == 3
        assert network.flush_source_queue(5) == 3
        assert len(network.source_queues[5]) == 0
        assert network.dropped_packets == 1

    def test_router_views_expose_ports_and_observables(self):
        network = self._network()
        corner = network.router(0)
        assert set(corner.input_ports) == {
            Direction.LOCAL,
            Direction.EAST,
            Direction.NORTH,
        }
        interior = network.router(5)
        assert set(interior.input_ports) == {Direction.LOCAL, *Direction.cardinal()}
        assert interior.port(Direction.WEST) is not None
        assert corner.port(Direction.WEST) is None
        assert corner.vco(Direction.WEST) == 0.0
        assert corner.boc(Direction.WEST) == 0
        assert len(network.routers) == 16

    def test_single_direction_frame_extraction_uses_fast_path(self):
        simulator = NoCSimulator(
            SimulationConfig(rows=4, warmup_cycles=0, seed=0, backend="soa")
        )
        simulator.add_source(
            UniformRandomTraffic(simulator.topology, injection_rate=0.3, seed=0)
        )
        simulator.run(100)
        reference = NoCSimulator(
            SimulationConfig(rows=4, warmup_cycles=0, seed=0, backend="object")
        )
        reference.add_source(
            UniformRandomTraffic(reference.topology, injection_rate=0.3, seed=0)
        )
        reference.run(100)
        for direction in Direction.cardinal():
            for kind in FeatureKind:
                assert np.array_equal(
                    extract_feature_frame(simulator.network, direction, kind),
                    extract_feature_frame(reference.network, direction, kind),
                )


class TestBackendCacheIsolation:
    def test_cache_keys_differ_per_backend(self, monkeypatch):
        """Cached artifacts are keyed per backend: a cross-backend
        comparison with a shared cache dir must never serve one backend's
        results as the other's."""
        from repro.runtime.hashing import cache_key

        monkeypatch.setenv("REPRO_SIM_BACKEND", "soa")
        soa_key = cache_key("scenario-run", {"seed": 1})
        monkeypatch.setenv("REPRO_SIM_BACKEND", "object")
        object_key = cache_key("scenario-run", {"seed": 1})
        assert soa_key != object_key
        monkeypatch.setenv("REPRO_SIM_BACKEND", "soa")
        assert cache_key("scenario-run", {"seed": 1}) == soa_key


class TestSyntheticStreamRegression:
    def test_bulk_uniform_draws_match_scalar_path(self):
        """The vectorized destination draw is pinned to the scalar stream."""

        class ScalarUniform(UniformRandomTraffic):
            def destinations_for(self, sources):
                return np.array(
                    [self.destination_for(int(s)) for s in sources], dtype=np.int64
                )

        topology = MeshTopology(rows=8)
        for seed in (0, 3, 17):
            fast = UniformRandomTraffic(topology, injection_rate=0.15, seed=seed)
            slow = ScalarUniform(topology, injection_rate=0.15, seed=seed)
            for cycle in range(150):
                fast_packets = [
                    (p.source, p.destination) for p in fast.packets_for_cycle(cycle)
                ]
                slow_packets = [
                    (p.source, p.destination) for p in slow.packets_for_cycle(cycle)
                ]
                assert fast_packets == slow_packets
