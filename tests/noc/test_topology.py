"""Unit and property-based tests for the mesh topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import Direction, MeshTopology


class TestConstruction:
    def test_square_default(self):
        topo = MeshTopology(rows=8)
        assert topo.columns == 8
        assert topo.num_nodes == 64
        assert len(topo) == 64

    def test_rectangular(self):
        topo = MeshTopology(rows=4, columns=6)
        assert topo.num_nodes == 24

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshTopology(rows=0)
        with pytest.raises(ValueError):
            MeshTopology(rows=4, columns=-1)


class TestCoordinates:
    def test_row_major_numbering(self):
        topo = MeshTopology(rows=4)
        assert topo.coordinates(0) == (0, 0)
        assert topo.coordinates(3) == (3, 0)
        assert topo.coordinates(4) == (0, 1)
        assert topo.node_id(3, 2) == 11

    def test_paper_figure4_node_ids(self):
        # Figure 4 uses node 104 on a 16x16 mesh: column 8, row 6.
        topo = MeshTopology(rows=16)
        assert topo.coordinates(104) == (8, 6)
        assert topo.node_id(8, 6) == 104

    def test_out_of_range(self):
        topo = MeshTopology(rows=4)
        with pytest.raises(ValueError):
            topo.coordinates(16)
        with pytest.raises(ValueError):
            topo.node_id(4, 0)

    @given(rows=st.integers(2, 16), cols=st.integers(2, 16), node=st.integers(0, 255))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, rows, cols, node):
        topo = MeshTopology(rows=rows, columns=cols)
        node = node % topo.num_nodes
        x, y = topo.coordinates(node)
        assert topo.node_id(x, y) == node


class TestNeighbors:
    def test_interior_node_has_four_neighbors(self):
        topo = MeshTopology(rows=4)
        neighbors = topo.neighbors(5)  # (1, 1)
        assert neighbors[Direction.EAST] == 6
        assert neighbors[Direction.WEST] == 4
        assert neighbors[Direction.NORTH] == 9
        assert neighbors[Direction.SOUTH] == 1

    def test_corner_node_has_two_neighbors(self):
        topo = MeshTopology(rows=4)
        assert topo.degree(0) == 2
        assert topo.is_corner_node(0)

    def test_edge_node_has_three_neighbors(self):
        topo = MeshTopology(rows=4)
        assert topo.degree(1) == 3
        assert topo.is_edge_node(1)
        assert not topo.is_corner_node(1)

    def test_local_neighbor_is_self(self):
        topo = MeshTopology(rows=4)
        assert topo.neighbor(5, Direction.LOCAL) == 5

    def test_neighbor_off_mesh_is_none(self):
        topo = MeshTopology(rows=4)
        assert topo.neighbor(3, Direction.EAST) is None
        assert topo.neighbor(0, Direction.SOUTH) is None

    @given(rows=st.integers(3, 12), node=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_neighbor_symmetry(self, rows, node):
        topo = MeshTopology(rows=rows)
        node = node % topo.num_nodes
        for direction, other in topo.neighbors(node).items():
            assert topo.neighbor(other, direction.opposite) == node


class TestInputDirections:
    def test_interior_has_four_input_ports(self):
        topo = MeshTopology(rows=4)
        assert set(topo.input_directions(5)) == set(Direction.cardinal())

    def test_corner_has_two_input_ports(self):
        topo = MeshTopology(rows=4)
        assert set(topo.input_directions(0)) == {Direction.EAST, Direction.NORTH}

    def test_paper_port_count_statement(self):
        # "routers in the center have four ports; edges three; corners two"
        topo = MeshTopology(rows=6)
        counts = {2: 0, 3: 0, 4: 0}
        for node in topo.nodes():
            counts[len(topo.input_directions(node))] += 1
        assert counts[2] == 4
        assert counts[3] == 4 * (6 - 2)
        assert counts[4] == (6 - 2) ** 2


class TestDistances:
    def test_manhattan_distance(self):
        topo = MeshTopology(rows=5)
        assert topo.manhattan_distance(0, 24) == 8
        assert topo.manhattan_distance(7, 7) == 0

    @given(rows=st.integers(3, 10), a=st.integers(0, 100), b=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_distance_symmetric(self, rows, a, b):
        topo = MeshTopology(rows=rows)
        a, b = a % topo.num_nodes, b % topo.num_nodes
        assert topo.manhattan_distance(a, b) == topo.manhattan_distance(b, a)


class TestDirection:
    def test_opposites(self):
        assert Direction.EAST.opposite is Direction.WEST
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.LOCAL.opposite is Direction.LOCAL

    def test_cardinal_order_matches_paper(self):
        # The paper lists frames in E, N, W, S order.
        assert [d.value for d in Direction.cardinal()] == ["E", "N", "W", "S"]
