"""Unit tests for packets and flits."""

import pytest

from repro.noc.packet import Flit, FlitType, Packet


class TestPacketConstruction:
    def test_defaults(self):
        packet = Packet(source=0, destination=5)
        assert packet.size_flits == 4
        assert not packet.is_malicious
        assert not packet.is_delivered

    def test_unique_ids(self):
        a = Packet(source=0, destination=1)
        b = Packet(source=0, destination=1)
        assert a.packet_id != b.packet_id

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Packet(source=0, destination=1, size_flits=0)

    def test_self_destination_rejected(self):
        with pytest.raises(ValueError):
            Packet(source=3, destination=3)


class TestFlitSerialisation:
    def test_multi_flit_structure(self):
        packet = Packet(source=0, destination=1, size_flits=4)
        flits = packet.to_flits()
        assert len(flits) == 4
        assert flits[0].flit_type is FlitType.HEAD
        assert flits[1].flit_type is FlitType.BODY
        assert flits[-1].flit_type is FlitType.TAIL
        assert [f.index for f in flits] == [0, 1, 2, 3]

    def test_single_flit_packet(self):
        packet = Packet(source=0, destination=1, size_flits=1)
        (flit,) = packet.to_flits()
        assert flit.flit_type is FlitType.HEAD_TAIL
        assert flit.is_head and flit.is_tail

    def test_flit_destination_mirrors_packet(self):
        packet = Packet(source=2, destination=9)
        assert all(f.destination == 9 for f in packet.to_flits())

    def test_two_flit_packet_has_head_and_tail(self):
        packet = Packet(source=0, destination=1, size_flits=2)
        flits = packet.to_flits()
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[1].is_tail and not flits[1].is_head


class TestLatencyAccounting:
    def test_latencies_after_delivery(self):
        packet = Packet(source=0, destination=1, created_cycle=10)
        packet.injected_cycle = 14
        packet.ejected_cycle = 30
        assert packet.queue_latency() == 4
        assert packet.network_latency() == 16
        assert packet.total_latency() == 20
        assert packet.is_delivered

    def test_latency_before_injection_raises(self):
        packet = Packet(source=0, destination=1)
        with pytest.raises(ValueError):
            packet.queue_latency()

    def test_latency_before_delivery_raises(self):
        packet = Packet(source=0, destination=1)
        packet.injected_cycle = 3
        with pytest.raises(ValueError):
            packet.network_latency()
        with pytest.raises(ValueError):
            packet.total_latency()
