"""Shared fixtures for the test suite.

Heavy objects (simulated runs, trained models) are session-scoped so the many
tests that need "a small trained pipeline" or "a few monitor samples" share
one instance instead of re-simulating.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Tier-1 tests are hermetic: no artifact-cache reads/writes outside explicit
# cache fixtures (a stale on-disk model must never mask a code change), and
# serial execution unless a test opts in with an explicit ParallelRunner.
# Hard assignment, not setdefault — an inherited REPRO_CACHE=1 must not leak
# a shared on-disk cache into the suite.
os.environ["REPRO_CACHE"] = "0"
os.environ["REPRO_WORKERS"] = "1"

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.monitor.dataset import DatasetBuilder, DatasetConfig
from repro.noc.topology import MeshTopology
from repro.traffic.scenario import AttackScenario


SMALL_ROWS = 6


@pytest.fixture(scope="session")
def small_topology() -> MeshTopology:
    """A 6x6 mesh: small enough for fast simulation, large enough for frames."""
    return MeshTopology(rows=SMALL_ROWS)


@pytest.fixture(scope="session")
def small_dataset_config() -> DatasetConfig:
    """Dataset configuration matching the small topology."""
    return DatasetConfig(
        rows=SMALL_ROWS,
        sample_period=96,
        samples_per_run=4,
        warmup_cycles=32,
        benign_injection_rate=0.02,
        fir=0.8,
        seed=11,
    )


@pytest.fixture(scope="session")
def small_builder(small_dataset_config) -> DatasetBuilder:
    return DatasetBuilder(small_dataset_config)


@pytest.fixture(scope="session")
def small_runs(small_builder):
    """Benign + attacked runs over two benchmarks (session-cached)."""
    return small_builder.build_runs(
        benchmarks=["uniform_random", "blackscholes"],
        scenarios_per_benchmark=2,
        seed=11,
    )


@pytest.fixture(scope="session")
def small_detection_dataset(small_builder, small_runs):
    return small_builder.detection_dataset(small_runs)


@pytest.fixture(scope="session")
def small_localization_dataset(small_builder, small_runs):
    return small_builder.localization_dataset(small_runs)


@pytest.fixture(scope="session")
def trained_pipeline(small_builder, small_runs):
    """A DL2Fence pipeline trained on the session's small runs."""
    fence = DL2Fence(small_builder.topology, DL2FenceConfig(seed=3))
    fence.fit_from_runs(small_builder, small_runs, detector_epochs=40, localizer_epochs=60)
    return fence


@pytest.fixture(scope="session")
def example_scenario(small_topology) -> AttackScenario:
    """A deterministic single-attacker scenario on the small mesh."""
    # Attacker in the north-east quadrant, victim near the south-west corner.
    attacker = small_topology.node_id(4, 4)
    victim = small_topology.node_id(1, 1)
    return AttackScenario(attackers=(attacker,), victim=victim, fir=0.8)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
