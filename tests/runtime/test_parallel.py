"""ParallelRunner: ordering, serial/parallel equivalence, derived seeds."""

import numpy as np
import pytest

from repro.runtime.parallel import ParallelRunner, configured_workers, derive_seeds


def _draw(task):
    """Module-level task: a seeded random draw (picklable for worker pools)."""
    index, seed = task
    rng = np.random.default_rng(seed)
    return index, float(rng.random())


def _boom(task):
    raise RuntimeError(f"task {task} failed")


class TestConfiguredWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert configured_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert configured_workers() == 4
        assert ParallelRunner().workers == 4

    def test_env_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert configured_workers() == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            configured_workers()


class TestDeriveSeeds:
    def test_deterministic(self):
        assert derive_seeds(7, 5) == derive_seeds(7, 5)

    def test_root_seed_matters(self):
        assert derive_seeds(7, 5) != derive_seeds(8, 5)

    def test_pairwise_distinct(self):
        seeds = derive_seeds(0, 64)
        assert len(set(seeds)) == 64

    def test_prefix_stable_under_count(self):
        """SeedSequence.spawn children depend only on (root, index)."""
        assert derive_seeds(3, 8)[:4] == derive_seeds(3, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_seeds(0, -1)


class TestMap:
    TASKS = [(i, 1000 + i) for i in range(8)]

    def test_serial_map_in_order(self):
        results = ParallelRunner(workers=1).map(_draw, self.TASKS)
        assert [index for index, _ in results] == list(range(8))

    def test_parallel_equals_serial(self):
        serial = ParallelRunner(workers=1).map(_draw, self.TASKS)
        parallel = ParallelRunner(workers=4).map(_draw, self.TASKS)
        assert serial == parallel

    def test_empty_and_single_task(self):
        runner = ParallelRunner(workers=4)
        assert runner.map(_draw, []) == []
        assert runner.map(_draw, [(0, 5)]) == ParallelRunner(workers=1).map(
            _draw, [(0, 5)]
        )

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="failed"):
            ParallelRunner(workers=2).map(_boom, [1, 2, 3])

    def test_map_seeded_parallel_equals_serial(self):
        items = list(range(6))
        serial = ParallelRunner(workers=1).map_seeded(_draw, items, root_seed=99)
        parallel = ParallelRunner(workers=3).map_seeded(_draw, items, root_seed=99)
        assert serial == parallel
        # The seeds actually differ per task (independent streams).
        values = [value for _, value in serial]
        assert len(set(values)) == len(values)
