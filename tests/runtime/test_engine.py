"""ExperimentEngine: cached runs/models round-trip by value, never retrain."""

import numpy as np
import pytest

from repro.core.config import DL2FenceConfig
from repro.core.pipeline import DL2Fence
from repro.defense.policy import MitigationPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.mitigation import run_defended_episode, train_defense_pipeline
from repro.monitor.dataset import DatasetBuilder, DatasetConfig
from repro.noc.topology import Direction
from repro.runtime.cache import ArtifactCache
from repro.runtime.engine import ExperimentEngine
from repro.runtime.parallel import ParallelRunner

QUICK_DATASET = DatasetConfig(
    rows=5, sample_period=64, samples_per_run=2, warmup_cycles=16, seed=11
)
BENCHMARKS = ["uniform_random"]


def make_engine(tmp_path=None, workers=1) -> ExperimentEngine:
    cache = (
        ArtifactCache.disabled()
        if tmp_path is None
        else ArtifactCache(root=tmp_path / "cache", enabled=True)
    )
    return ExperimentEngine(cache=cache, runner=ParallelRunner(workers=workers))


def assert_runs_equal(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert a.benchmark == b.benchmark
        assert a.scenario == b.scenario
        assert a.topology.rows == b.topology.rows
        assert len(a.samples) == len(b.samples)
        for sa, sb in zip(a.samples, b.samples):
            assert sa.cycle == sb.cycle
            assert sa.attack_active == sb.attack_active
            for direction in Direction.cardinal():
                assert np.array_equal(
                    sa.vco.frames[direction].values, sb.vco.frames[direction].values
                )
                assert np.array_equal(
                    sa.boc.frames[direction].values, sb.boc.frames[direction].values
                )


class TestBuildRuns:
    def test_matches_dataset_builder_exactly(self):
        legacy = DatasetBuilder(QUICK_DATASET).build_runs(
            benchmarks=BENCHMARKS, scenarios_per_benchmark=2, seed=11
        )
        engine = make_engine()
        fresh = engine.build_runs(
            QUICK_DATASET, benchmarks=BENCHMARKS, scenarios_per_benchmark=2, seed=11
        )
        assert_runs_equal(legacy, fresh)

    def test_cache_round_trip_is_bit_identical(self, tmp_path):
        engine = make_engine(tmp_path)
        fresh = engine.build_runs(
            QUICK_DATASET, benchmarks=BENCHMARKS, scenarios_per_benchmark=2, seed=11
        )
        cached = engine.build_runs(
            QUICK_DATASET, benchmarks=BENCHMARKS, scenarios_per_benchmark=2, seed=11
        )
        # One per-task entry per run: the second call is all hits.
        assert engine.cache.stats.hits == len(fresh)
        assert_runs_equal(fresh, cached)

    def test_overlapping_run_lists_share_entries(self, tmp_path):
        """A subset benchmark list reuses the superset's per-task entries."""
        engine = make_engine(tmp_path)
        both = engine.build_runs(
            QUICK_DATASET,
            benchmarks=["uniform_random", "tornado"],
            scenarios_per_benchmark=1,
            seed=11,
        )
        stores_before = engine.cache.stats.stores
        subset = engine.build_runs(
            QUICK_DATASET,
            benchmarks=["uniform_random"],
            scenarios_per_benchmark=1,
            seed=11,
        )
        assert engine.cache.stats.stores == stores_before, "no re-simulation"
        assert_runs_equal(both[: len(subset)], subset)

    def test_parallel_workers_identical_to_serial(self):
        serial = make_engine(workers=1).build_runs(
            QUICK_DATASET, benchmarks=BENCHMARKS, scenarios_per_benchmark=2, seed=11
        )
        parallel = make_engine(workers=4).build_runs(
            QUICK_DATASET, benchmarks=BENCHMARKS, scenarios_per_benchmark=2, seed=11
        )
        assert_runs_equal(serial, parallel)

    def test_corrupted_entry_is_rebuilt(self, tmp_path):
        engine = make_engine(tmp_path)
        fresh = engine.build_runs(QUICK_DATASET, benchmarks=BENCHMARKS, seed=11)
        entries = sorted((tmp_path / "cache").rglob("runs.npz"))
        assert len(entries) == len(fresh)
        entries[0].write_bytes(entries[0].read_bytes()[: entries[0].stat().st_size // 2])
        rebuilt = engine.build_runs(QUICK_DATASET, benchmarks=BENCHMARKS, seed=11)
        assert engine.cache.stats.invalid == 1
        assert_runs_equal(fresh, rebuilt)


class TestTrainedFence:
    FENCE = DL2FenceConfig(seed=3)

    def _train(self, engine):
        return engine.trained_fence(
            QUICK_DATASET,
            self.FENCE,
            benchmarks=BENCHMARKS,
            scenarios_per_benchmark=2,
            seed=11,
            detector_epochs=8,
            localizer_epochs=8,
        )

    def test_cached_weights_bit_identical(self, tmp_path):
        engine = make_engine(tmp_path)
        fresh, _ = self._train(engine)
        cached, _ = self._train(engine)
        for model_name in ("detector", "localizer"):
            fresh_model = getattr(fresh, model_name).model
            cached_model = getattr(cached, model_name).model
            assert cached_model.dtype == fresh_model.dtype
            for la, lb in zip(fresh_model.layers, cached_model.layers):
                for name in la.params:
                    assert np.array_equal(la.params[name], lb.params[name])

    def test_second_call_never_retrains(self, tmp_path, monkeypatch):
        engine = make_engine(tmp_path)
        self._train(engine)

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit must not retrain")

        monkeypatch.setattr(DL2Fence, "fit_from_runs", forbidden)
        cached, _ = self._train(engine)
        assert cached.detector.trained
        assert cached.localizer.trained


class TestCachedVersusFreshDefense:
    """Satellite requirement: a cache-loaded pipeline defends identically."""

    EXPERIMENT = ExperimentConfig.quick()

    def test_identical_defense_report(self, tmp_path):
        policy = MitigationPolicy.quarantine(engage_after=2, release_after=4)

        fresh_fence, fresh_builder = train_defense_pipeline(
            self.EXPERIMENT, engine=make_engine()
        )
        cached_engine = make_engine(tmp_path)
        train_defense_pipeline(self.EXPERIMENT, engine=cached_engine)  # populate
        cached_fence, cached_builder = train_defense_pipeline(
            self.EXPERIMENT, engine=cached_engine
        )
        assert cached_engine.cache.stats.hits >= 1

        def episode(fence, builder):
            report, _ = run_defended_episode(
                fence,
                builder,
                policy,
                fir=0.8,
                seed=123,
                attack_windows=6,
                baseline_latency=10.0,
            )
            return report.as_dict()

        assert episode(fresh_fence, fresh_builder) == episode(
            cached_fence, cached_builder
        )


class TestCachedRecords:
    def test_round_trip_and_single_build(self, tmp_path):
        engine = make_engine(tmp_path)
        calls = []

        def build():
            calls.append(1)
            return [{"a": 1, "b": [1.5, None]}]

        first = engine.cached_records("records", {"k": 1}, build)
        second = engine.cached_records("records", {"k": 1}, build)
        assert first == second == [{"a": 1, "b": [1.5, None]}]
        assert len(calls) == 1
