"""ArtifactCache store accounting: the size estimate tracks the real disk.

``store()`` maintains an incremental ``_size_estimate`` so the LRU size cap
does not rescan the cache root on every write.  Two drifts regression-pinned
here:

* a store that lost the concurrent-writer race (the entry already existed,
  its own staging dir was purged) must not bump ``stats.stores`` or grow
  the estimate — nothing was added to disk;
* a winning store adds ``manifest.json`` to disk too, so an estimate built
  from the data files alone permanently undercounts ``total_bytes()``.
"""

from repro.runtime.cache import ArtifactCache


def _save_blob(directory, payload=b"x" * 512):
    (directory / "blob.bin").write_bytes(payload)


def _cache(tmp_path):
    # max_bytes set (far above any test artifact) so the incremental size
    # estimate is maintained on every store.
    return ArtifactCache(root=tmp_path / "cache", enabled=True, max_bytes=1 << 30)


class TestStoreAccounting:
    def test_estimate_matches_disk_after_every_store(self, tmp_path):
        """Incremental estimate == total_bytes() (manifest bytes included)."""
        cache = _cache(tmp_path)
        for key in range(4):
            cache.store("kind", {"key": key}, _save_blob)
            assert cache._size_estimate == cache.total_bytes(), key
        assert cache.stats.stores == 4

    def test_lost_race_is_not_counted(self, tmp_path):
        """A store that found the entry already on disk adds nothing."""
        cache = _cache(tmp_path)
        cache.store("kind", {"key": 1}, _save_blob)
        cache.store("kind", {"key": 2}, _save_blob)
        stores = cache.stats.stores
        estimate = cache._size_estimate
        # Same payload again: the entry exists, so this store loses the
        # "race" deterministically and purges its own staging dir.
        cache.store("kind", {"key": 2}, _save_blob)
        assert cache.stats.stores == stores
        assert cache._size_estimate == estimate
        assert cache._size_estimate == cache.total_bytes()

    def test_estimate_survives_mixed_wins_and_losses(self, tmp_path):
        cache = _cache(tmp_path)
        for key in (1, 2, 1, 3, 2, 1):
            cache.store("kind", {"key": key}, _save_blob)
            assert cache._size_estimate == cache.total_bytes()
        assert cache.stats.stores == 3
