"""Shared-memory frame transport: bit-identical to pickling, less IPC."""

import numpy as np
import pytest

from repro.monitor.dataset import DatasetConfig
from repro.monitor.features import FeatureKind
from repro.noc.topology import Direction
from repro.runtime.cache import ArtifactCache
from repro.runtime.engine import (
    ExperimentEngine,
    _run_from_bundle,
    _run_to_bundle,
    _simulate_run,
    _simulate_run_bundle,
    RunTask,
)
from repro.runtime.parallel import (
    ArrayBundle,
    ParallelRunner,
    _ShmCall,
    _unpack_handle,
    shared_memory_enabled,
)

CONFIG = DatasetConfig(
    rows=4, sample_period=64, samples_per_run=3, warmup_cycles=16, seed=5
)


def _bundle_fn(seed: int) -> ArrayBundle:
    rng = np.random.default_rng(seed)
    return ArrayBundle(
        meta={"seed": seed},
        arrays={
            "a": rng.random((3, 4, 5)),
            "b": rng.integers(0, 100, size=(7,)),
        },
    )


def assert_runs_equal(run_a, run_b):
    assert run_a.benchmark == run_b.benchmark
    assert run_a.scenario == run_b.scenario
    assert run_a.topology == run_b.topology
    assert len(run_a.samples) == len(run_b.samples)
    for sample_a, sample_b in zip(run_a.samples, run_b.samples):
        assert sample_a.cycle == sample_b.cycle
        assert sample_a.attack_active == sample_b.attack_active
        for kind in FeatureKind:
            for direction in Direction.cardinal():
                assert np.array_equal(
                    sample_a.feature(kind).frames[direction].values,
                    sample_b.feature(kind).frames[direction].values,
                )


class TestSegmentRoundTrip:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_FRAMES", raising=False)
        assert shared_memory_enabled()
        monkeypatch.setenv("REPRO_SHM_FRAMES", "0")
        assert not shared_memory_enabled()

    def test_pack_unpack_preserves_arrays(self):
        """The segment writer/reader pair round-trips values and dtypes."""
        handle = _ShmCall(_bundle_fn)(9)
        rebuilt = _unpack_handle(handle)
        reference = _bundle_fn(9)
        assert rebuilt.meta == reference.meta
        assert set(rebuilt.arrays) == set(reference.arrays)
        for name in reference.arrays:
            assert rebuilt.arrays[name].dtype == reference.arrays[name].dtype
            assert np.array_equal(rebuilt.arrays[name], reference.arrays[name])

    def test_empty_bundle_falls_back_to_pickle(self):
        handle = _ShmCall(lambda _: ArrayBundle(meta={"x": 1}, arrays={}))(0)
        rebuilt = _unpack_handle(handle)
        assert rebuilt.meta == {"x": 1}
        assert rebuilt.arrays == {}

    def test_map_arrays_parallel_matches_serial(self):
        serial = ParallelRunner(workers=1).map_arrays(_bundle_fn, [1, 2, 3])
        parallel = ParallelRunner(workers=2).map_arrays(_bundle_fn, [1, 2, 3])
        for bundle_a, bundle_b in zip(serial, parallel):
            assert bundle_a.meta == bundle_b.meta
            for name in bundle_a.arrays:
                assert np.array_equal(bundle_a.arrays[name], bundle_b.arrays[name])


class TestScenarioRunTransport:
    def _tasks(self):
        return [
            RunTask(CONFIG, "uniform_random", None, 11),
            RunTask(CONFIG, "tornado", None, 12),
            RunTask(CONFIG, "uniform_random", None, 13),
        ]

    def test_bundle_round_trip_is_lossless(self):
        run = _simulate_run(self._tasks()[0])
        assert_runs_equal(run, _run_from_bundle(_run_to_bundle(run)))

    def test_worker_bundles_match_in_process_runs(self):
        for task in self._tasks()[:2]:
            assert_runs_equal(
                _simulate_run(task), _run_from_bundle(_simulate_run_bundle(task))
            )

    @pytest.mark.parametrize("shm", ["1", "0"])
    def test_parallel_build_runs_bit_identical(self, shm, monkeypatch):
        """Workers + shared memory return the exact serial frames."""
        monkeypatch.setenv("REPRO_SHM_FRAMES", shm)
        serial = ExperimentEngine(
            cache=ArtifactCache.disabled(), runner=ParallelRunner(workers=1)
        ).build_runs(CONFIG, benchmarks=["uniform_random"], seed=3)
        parallel = ExperimentEngine(
            cache=ArtifactCache.disabled(), runner=ParallelRunner(workers=2)
        ).build_runs(CONFIG, benchmarks=["uniform_random"], seed=3)
        assert len(serial) == len(parallel)
        for run_a, run_b in zip(serial, parallel):
            assert_runs_equal(run_a, run_b)
