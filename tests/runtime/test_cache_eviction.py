"""Size-capped LRU eviction of the artifact cache (ROADMAP follow-up)."""

import json
import os
import time
from pathlib import Path

import pytest

from repro.runtime.cache import ArtifactCache, _max_bytes_from_environment


def _store_blob(cache: ArtifactCache, key: int, payload_bytes: int) -> Path:
    def save(directory: Path) -> None:
        (directory / "blob.bin").write_bytes(b"x" * payload_bytes)

    return cache.store("blob", {"key": key}, save)


def _load_blob(directory: Path) -> bytes:
    return (directory / "blob.bin").read_bytes()


def _age(entry: Path, seconds: float) -> None:
    """Backdate an entry's manifest so eviction order is deterministic."""
    stamp = time.time() - seconds
    os.utime(entry / "manifest.json", (stamp, stamp))


class TestEnvironmentKnob:
    def test_default_is_unbounded(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert _max_bytes_from_environment() is None
        assert ArtifactCache(root="unused").max_bytes is None

    def test_parses_and_validates(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        assert _max_bytes_from_environment() == 4096
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert _max_bytes_from_environment() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.raises(ValueError):
            _max_bytes_from_environment()


class TestEviction:
    def test_oldest_entries_pruned_past_cap(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True, max_bytes=None)
        entries = [_store_blob(cache, key, 1000) for key in range(4)]
        for index, entry in enumerate(entries):
            _age(entry, seconds=1000 - index * 100)  # entry 0 is the oldest
        cache.max_bytes = 2500
        evicted = cache.enforce_size_cap()
        assert evicted == 2
        assert cache.stats.evicted == 2
        assert not entries[0].exists() and not entries[1].exists()
        assert entries[2].exists() and entries[3].exists()
        assert cache.total_bytes() <= 2500

    def test_store_triggers_eviction(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True, max_bytes=2500)
        first = _store_blob(cache, 0, 1000)
        _age(first, 500)
        second = _store_blob(cache, 1, 1000)
        _age(second, 400)
        assert first.exists() and second.exists()
        _store_blob(cache, 2, 1000)  # pushes the total past the cap
        assert not first.exists()
        assert second.exists()
        assert cache.stats.evicted == 1

    def test_fetch_hit_refreshes_lru_order(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True, max_bytes=None)
        first = _store_blob(cache, 0, 1000)
        second = _store_blob(cache, 1, 1000)
        _age(first, 1000)
        _age(second, 500)
        # Touch the older entry: it becomes the most recently used.
        assert cache.fetch("blob", {"key": 0}, _load_blob) is not None
        cache.max_bytes = 1500
        cache.enforce_size_cap()
        assert first.exists()
        assert not second.exists()

    def test_most_recent_entry_survives_tiny_cap(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True, max_bytes=10)
        entry = _store_blob(cache, 0, 1000)
        assert entry.exists()  # a lone oversized entry is never churned

    def test_disabled_cache_never_evicts(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False, max_bytes=1)
        assert cache.enforce_size_cap() == 0
