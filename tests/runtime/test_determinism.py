"""Serial/parallel equivalence of the ported experiment sweeps.

Satellite requirement of the engine: ``REPRO_WORKERS=4`` sweep results must
equal ``REPRO_WORKERS=1`` results seed for seed.  Every sweep point carries
its own seed in its task descriptor, so fanning the points across worker
processes cannot change any value — these tests pin that property on the
latency and mitigation sweeps end to end.
"""

import json

from repro.defense.policy import MitigationPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.latency_sweep import run_latency_sweep
from repro.experiments.mitigation import (
    ASYMMETRIC_FLOW_FIRS,
    run_mitigation_sweep,
)
from repro.runtime.engine import ExperimentEngine
from repro.runtime.parallel import ParallelRunner

QUICK = ExperimentConfig.quick()


def make_engine(workers: int) -> ExperimentEngine:
    from repro.runtime.cache import ArtifactCache

    return ExperimentEngine(
        cache=ArtifactCache.disabled(), runner=ParallelRunner(workers=workers)
    )


def canonical(records: list[dict]) -> str:
    """NaN-tolerant deep comparison via canonical JSON."""
    return json.dumps(records, sort_keys=True)


class TestLatencySweepDeterminism:
    def test_workers4_equals_workers1(self):
        kwargs = dict(firs=(0.0, 0.5, 1.0), config=QUICK, cycles=260)
        serial = run_latency_sweep(engine=make_engine(1), **kwargs)
        parallel = run_latency_sweep(engine=make_engine(4), **kwargs)
        assert canonical([p.as_dict() for p in serial]) == canonical(
            [p.as_dict() for p in parallel]
        )


class TestMitigationSweepDeterminism:
    KWARGS = dict(
        firs=(0.8,),
        rows_values=(QUICK.rows,),
        policies=(MitigationPolicy.quarantine(engage_after=2, release_after=4),),
        config=QUICK,
        attack_windows=6,
    )

    def test_workers4_equals_workers1(self):
        serial = run_mitigation_sweep(engine=make_engine(1), **self.KWARGS)
        parallel = run_mitigation_sweep(engine=make_engine(4), **self.KWARGS)
        assert canonical([p.to_payload() for p in serial]) == canonical(
            [p.to_payload() for p in parallel]
        )

    def test_asymmetric_profile_recorded_and_deterministic(self):
        kwargs = dict(self.KWARGS, num_flows=2, flow_fir_profile=ASYMMETRIC_FLOW_FIRS)
        serial = run_mitigation_sweep(engine=make_engine(1), **kwargs)
        parallel = run_mitigation_sweep(engine=make_engine(4), **kwargs)
        assert canonical([p.to_payload() for p in serial]) == canonical(
            [p.to_payload() for p in parallel]
        )
        point = serial[0]
        # The loudest flow floods at the swept FIR, the quiet one at 1/4.
        assert point.flow_firs == (0.8, 0.2)
        assert point.num_attackers == 2
