"""Canonical cache-key hashing: stability and field sensitivity."""

import dataclasses

import numpy as np
import pytest

from repro.core.config import DL2FenceConfig
from repro.experiments.config import ExperimentConfig
from repro.monitor.dataset import DatasetConfig
from repro.monitor.features import FeatureKind
from repro.runtime.hashing import cache_key, canonical_payload


class TestCanonicalPayload:
    def test_scalars_pass_through(self):
        assert canonical_payload(3) == 3
        assert canonical_payload("x") == "x"
        assert canonical_payload(True) is True
        assert canonical_payload(None) is None

    def test_float_is_exact(self):
        assert canonical_payload(0.1) != canonical_payload(0.1 + 1e-12)

    def test_enum_carries_type_and_value(self):
        payload = canonical_payload(FeatureKind.VCO)
        assert payload["__enum__"] == "FeatureKind"

    def test_dataclass_carries_all_fields(self):
        payload = canonical_payload(DatasetConfig())
        field_names = {f.name for f in dataclasses.fields(DatasetConfig)}
        assert set(payload["fields"]) == field_names

    def test_ndarray_hashed_by_content(self):
        a = canonical_payload(np.arange(6).reshape(2, 3))
        b = canonical_payload(np.arange(6).reshape(2, 3))
        c = canonical_payload(np.arange(6).reshape(3, 2))
        assert a == b
        assert a != c

    def test_dict_key_order_irrelevant(self):
        assert canonical_payload({"a": 1, "b": 2}) == canonical_payload({"b": 2, "a": 1})

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_payload(object())


class TestCacheKey:
    def test_stable_across_calls(self):
        cfg = ExperimentConfig()
        assert cache_key("runs", cfg) == cache_key("runs", cfg)

    def test_kind_separates_namespaces(self):
        cfg = ExperimentConfig()
        assert cache_key("runs", cfg) != cache_key("models", cfg)

    @pytest.mark.parametrize(
        "field_name", [f.name for f in dataclasses.fields(ExperimentConfig)]
    )
    def test_every_experiment_field_changes_the_key(self, field_name):
        """Changing ANY config field must invalidate the cache entry."""
        base = ExperimentConfig()
        value = getattr(base, field_name)
        if isinstance(value, bool):
            bumped = not value
        elif isinstance(value, int):
            bumped = value + 1
        elif isinstance(value, float):
            bumped = value * 0.5 + 0.011
        else:  # pragma: no cover - no other field types today
            pytest.fail(f"unhandled field type for {field_name}")
        changed = base.scaled(**{field_name: bumped})
        assert cache_key("runs", base) != cache_key("runs", changed)

    @pytest.mark.parametrize(
        "field_name", [f.name for f in dataclasses.fields(DL2FenceConfig)]
    )
    def test_every_fence_field_changes_the_key(self, field_name):
        base = DL2FenceConfig()
        value = getattr(base, field_name)
        if isinstance(value, FeatureKind):
            bumped = (
                FeatureKind.BOC if value is FeatureKind.VCO else FeatureKind.VCO
            )
        elif isinstance(value, bool):
            bumped = not value
        elif isinstance(value, int):
            bumped = value + 1
        elif isinstance(value, float):
            bumped = value * 0.5 + 0.011
        elif field_name == "fusion_mode":
            bumped = "exact"
        elif field_name.endswith("normalization"):
            bumped = "sum" if value != "sum" else "none"
        else:  # pragma: no cover
            pytest.fail(f"unhandled field type for {field_name}")
        changed = dataclasses.replace(base, **{field_name: bumped})
        assert cache_key("fence", base) != cache_key("fence", changed)
