"""Shared-memory segment lifetime on the map_arrays failure paths.

Two leaks regression-pinned here (both stranded allocations in /dev/shm
for the remaining lifetime of a long sweep process):

* the parent-side cleanup of a failed ``map_arrays`` unpack skipped the
  very handle whose unpack raised (``handles[len(bundles) + 1:]`` instead
  of ``handles[len(bundles):]``);
* a worker whose array copy into the segment raised closed the segment
  but never unlinked it, so the allocation survived with no one holding
  its name.

Plus the inverse failure mode — premature *removal*: segments were
consumed only after the ``with Pool`` block had torn the workers down,
racing each worker's resource tracker (which unlinks everything still
registered the moment its worker exits).  ``map_arrays`` now unpacks
while the pool is alive, and the parent-side unlink tolerates the
tracker getting there first.
"""

import multiprocessing
import os

import numpy as np
import pytest

import repro.runtime.parallel as parallel
from repro.runtime.parallel import ArrayBundle, ParallelRunner, _ShmCall


def _bundle_task(seed: int) -> ArrayBundle:
    rng = np.random.default_rng(seed)
    return ArrayBundle(meta={"seed": seed}, arrays={"a": rng.random((64, 64))})


class _PoisonArray:
    """Array-shaped payload whose materialisation raises mid-copy.

    Carries the attributes the segment layout is computed from, so the
    worker allocates the segment first — then the copy into it fails.
    """

    nbytes = 64
    shape = (8,)
    dtype = np.dtype(np.float64)

    def __array__(self, *args, **kwargs):
        raise RuntimeError("array payload refused to materialise")


def _poison_bundle_task(seed: int) -> ArrayBundle:
    return ArrayBundle(meta=None, arrays={"bad": _PoisonArray()})


def _require_shared_memory():
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - ancient platforms
        pytest.skip("multiprocessing.shared_memory unavailable")
    return shared_memory


class TestFailedUnpackCleanup:
    def test_failing_unpack_leaves_zero_segments(self, monkeypatch):
        """Every handle's segment is freed when an unpack raises mid-stream.

        The fake unpack fails *before* touching the second handle's segment
        (the worst case: the failing handle reached none of its own
        cleanup), so only the parent's error path can free it.
        """
        shared_memory = _require_shared_memory()
        monkeypatch.delenv("REPRO_SHM_FRAMES", raising=False)
        runner = ParallelRunner(workers=2)

        segment_names = []
        real_unpack = parallel._unpack_handle

        def failing_unpack(handle):
            segment_names.append(handle.segment_name)
            if len(segment_names) == 2:
                raise RuntimeError("unpack failed before opening the segment")
            return real_unpack(handle)

        monkeypatch.setattr(parallel, "_unpack_handle", failing_unpack)
        with pytest.raises(RuntimeError):
            runner.map_arrays(_bundle_task, [1, 2, 3])

        assert len(segment_names) == 2
        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_discard_handle_safe_on_already_freed_segment(self):
        """_discard_handle tolerates a handle whose unpack already unlinked."""
        _require_shared_memory()
        handle = _ShmCall(_bundle_task)(5)
        bundle = parallel._unpack_handle(handle)  # consumes + unlinks
        assert np.array_equal(bundle.arrays["a"], _bundle_task(5).arrays["a"])
        parallel._discard_handle(handle)  # must not raise


class TestConcurrentTrackerUnlink:
    def test_unpack_tolerates_tracker_winning_the_unlink(self, monkeypatch):
        """A segment unlinked under us mid-unpack must not raise.

        Reproduces the parent side of the resource-tracker race: the attach
        and copy succeed, then the name vanishes (a worker's tracker
        unlinked it at worker exit) before the parent's own unlink runs.
        """
        shared_memory = _require_shared_memory()
        handle = _ShmCall(_bundle_task)(9)

        real_unlink = shared_memory.SharedMemory.unlink

        def preempted_unlink(self):
            real_unlink(self)
            raise FileNotFoundError(2, "No such file or directory", self._name)

        monkeypatch.setattr(shared_memory.SharedMemory, "unlink", preempted_unlink)
        bundle = parallel._unpack_handle(handle)
        assert np.array_equal(bundle.arrays["a"], _bundle_task(9).arrays["a"])


class TestWorkerCopyFailureCleanup:
    def test_copy_failure_unlinks_segment(self):
        """A failed copy into the segment must not strand the allocation."""
        _require_shared_memory()
        if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
            pytest.skip("/dev/shm not available")
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(RuntimeError):
            _ShmCall(_poison_bundle_task)(0)
        leaked = set(os.listdir("/dev/shm")) - before
        assert leaked == set()
