"""ArtifactCache: round-trips, atomicity, corruption recovery, disabling."""

import json

import numpy as np
import pytest

from repro.runtime.cache import ArtifactCache


def _save_array(value: np.ndarray, directory):
    np.save(directory / "value.npy", value)


def _load_array(directory) -> np.ndarray:
    return np.load(directory / "value.npy")


@pytest.fixture()
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(root=tmp_path / "cache", enabled=True)


class TestRoundTrip:
    def test_miss_on_empty_cache(self, cache):
        assert cache.fetch("k", {"a": 1}, _load_array) is None
        assert cache.stats.misses == 1

    def test_store_then_fetch_bit_identical(self, cache):
        value = np.random.default_rng(0).random((4, 5))
        cache.store("k", {"a": 1}, lambda d: _save_array(value, d))
        loaded = cache.fetch("k", {"a": 1}, _load_array)
        assert np.array_equal(loaded, value)
        assert loaded.dtype == value.dtype

    def test_payload_separates_entries(self, cache):
        cache.store("k", {"a": 1}, lambda d: _save_array(np.zeros(2), d))
        assert cache.fetch("k", {"a": 2}, _load_array) is None

    def test_get_or_build_builds_exactly_once(self, cache):
        calls = []

        def build():
            calls.append(1)
            return np.ones(3)

        for _ in range(3):
            value = cache.get_or_build(
                "k", {"a": 1}, build, _save_array, _load_array
            )
            assert np.array_equal(value, np.ones(3))
        assert len(calls) == 1
        assert cache.stats.hits == 2
        assert cache.stats.stores == 1


class TestCorruptionRecovery:
    def _stored_entry(self, cache):
        value = np.arange(12, dtype=np.float64).reshape(3, 4)
        entry = cache.store("k", {"a": 1}, lambda d: _save_array(value, d))
        assert entry is not None
        return value, entry

    def test_truncated_file_is_rebuilt_not_loaded(self, cache):
        value, entry = self._stored_entry(cache)
        data_file = entry / "value.npy"
        data_file.write_bytes(data_file.read_bytes()[:-7])
        assert cache.fetch("k", {"a": 1}, _load_array) is None
        assert not entry.exists(), "corrupt entry must be purged"
        assert cache.stats.invalid == 1
        # The rebuild path stores a fresh, loadable copy.
        rebuilt = cache.get_or_build(
            "k", {"a": 1}, lambda: value, _save_array, _load_array
        )
        assert np.array_equal(rebuilt, value)
        assert np.array_equal(cache.fetch("k", {"a": 1}, _load_array), value)

    def test_missing_manifest_is_a_miss(self, cache):
        _, entry = self._stored_entry(cache)
        (entry / "manifest.json").unlink()
        assert cache.fetch("k", {"a": 1}, _load_array) is None
        assert not entry.exists()

    def test_missing_data_file_is_a_miss(self, cache):
        _, entry = self._stored_entry(cache)
        (entry / "value.npy").unlink()
        assert cache.fetch("k", {"a": 1}, _load_array) is None

    def test_loader_exception_is_a_miss(self, cache):
        self._stored_entry(cache)

        def bad_load(directory):
            raise ValueError("scrambled bytes")

        assert cache.fetch("k", {"a": 1}, bad_load) is None
        assert cache.stats.invalid == 1

    def test_failed_save_leaves_no_entry(self, cache):
        def bad_save(directory):
            (directory / "value.npy").write_bytes(b"partial")
            raise OSError("disk full")

        with pytest.raises(OSError):
            cache.store("k", {"a": 1}, bad_save)
        assert cache.fetch("k", {"a": 1}, _load_array) is None
        staging = list(cache.root.rglob(".staging-*"))
        assert staging == [], "staging directories must not leak"


class TestDisabled:
    def test_disabled_cache_never_stores_or_hits(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        assert cache.store("k", {}, lambda d: _save_array(np.zeros(1), d)) is None
        assert cache.fetch("k", {}, _load_array) is None
        assert list(tmp_path.iterdir()) == []

    def test_environment_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert ArtifactCache.from_environment().enabled is False
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert ArtifactCache.from_environment().enabled is True
        monkeypatch.delenv("REPRO_CACHE")
        assert ArtifactCache.from_environment().enabled is True

    def test_environment_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        cache = ArtifactCache.from_environment()
        assert cache.root == tmp_path / "custom"


class TestManifest:
    def test_manifest_lists_every_file_with_sizes(self, cache):
        value = np.zeros(8)
        entry = cache.store("k", {}, lambda d: _save_array(value, d))
        manifest = json.loads((entry / "manifest.json").read_text())
        assert "value.npy" in manifest["files"]
        assert manifest["files"]["value.npy"] == (entry / "value.npy").stat().st_size
