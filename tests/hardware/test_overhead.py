"""Tests for the hardware-overhead claims of Figure 5 and Table 4."""

import pytest

from repro.hardware.overhead import (
    dl2fence_overhead,
    distributed_scheme_overhead,
    overhead_vs_mesh_size,
    relative_saving,
)
from repro.hardware.related_works import RELATED_WORKS, comparison_table


class TestOverheadReports:
    def test_breakdown_consistency(self):
        report = dl2fence_overhead(8)
        assert report.overhead_fraction == pytest.approx(
            report.total_accelerator_gates / report.noc_area_gates
        )
        assert report.overhead_percent == pytest.approx(100 * report.overhead_fraction)
        assert report.details["detector_parameters"] > 0

    def test_too_small_mesh_rejected(self):
        with pytest.raises(ValueError):
            dl2fence_overhead(3)


class TestFigure5Shape:
    def test_overhead_decreases_with_mesh_size(self):
        """Figure 5: overhead falls monotonically as the NoC grows."""
        reports = overhead_vs_mesh_size((4, 8, 16, 32))
        overheads = [r.overhead_fraction for r in reports]
        assert overheads == sorted(overheads, reverse=True)

    def test_overhead_within_factor_two_of_paper(self):
        """Absolute calibration: within ~2x of the paper's reported points."""
        paper = {4: 0.074, 8: 0.019, 16: 0.0045, 32: 0.0011}
        for report in overhead_vs_mesh_size((4, 8, 16, 32)):
            expected = paper[report.rows]
            assert 0.5 * expected < report.overhead_fraction < 2.0 * expected

    def test_8_to_16_saving_matches_paper_claim(self):
        """The paper claims a 76.3% overhead decrease from 8x8 to 16x16."""
        reports = {r.rows: r for r in overhead_vs_mesh_size((8, 16))}
        saving = relative_saving(
            reports[16].overhead_fraction, reports[8].overhead_fraction
        )
        assert 0.65 < saving < 0.85

    def test_saving_vs_sniffer_matches_paper_claim(self):
        """The paper claims 42.4% less hardware than Sniffer at 8x8."""
        report = dl2fence_overhead(8)
        sniffer = RELATED_WORKS["sniffer"].hardware_overhead_percent / 100
        saving = relative_saving(report.overhead_fraction, sniffer)
        assert 0.3 < saving < 0.6


class TestDistributedSchemes:
    def test_constant_in_mesh_size(self):
        assert distributed_scheme_overhead(8, 0.033) == distributed_scheme_overhead(16, 0.033)

    def test_dl2fence_beats_distributed_at_scale(self):
        """Global accelerators amortise; per-router schemes do not."""
        for rows in (8, 16, 32):
            ours = dl2fence_overhead(rows).overhead_fraction
            assert ours < distributed_scheme_overhead(rows, 0.033)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            distributed_scheme_overhead(8, -0.1)
        with pytest.raises(ValueError):
            distributed_scheme_overhead(1, 0.033)
        with pytest.raises(ValueError):
            relative_saving(0.01, 0.0)


class TestRelatedWorks:
    def test_table_contains_all_comparators(self):
        rows = comparison_table()
        assert len(rows) == 4
        assert {row["work"] for row in rows} == {
            "sniffer",
            "svm_anomaly",
            "xgb_global",
            "dl2fence_paper",
        }

    def test_paper_row_matches_abstract_numbers(self):
        dl2fence = RELATED_WORKS["dl2fence_paper"]
        assert dl2fence.detection_accuracy == pytest.approx(0.958)
        assert dl2fence.localization_accuracy == pytest.approx(0.917)
        assert dl2fence.hardware_overhead_percent == pytest.approx(0.45)
