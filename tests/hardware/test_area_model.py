"""Unit tests for the NoC and accelerator area models."""

import pytest

from repro.hardware.accelerator import AcceleratorParameters, CNNAcceleratorAreaModel
from repro.hardware.area_model import GateCosts, NoCAreaModel, RouterParameters
from repro.noc.topology import MeshTopology


class TestRouterArea:
    def test_more_ports_cost_more(self):
        model = NoCAreaModel()
        assert model.router_area(5) > model.router_area(3)

    def test_buffering_dominates(self):
        model = NoCAreaModel()
        router = model.router
        costs = model.costs
        buffer_gates = 5 * router.num_vcs * router.vc_depth * router.flit_width_bits
        assert model.router_area(5) > buffer_gates * costs.gates_per_buffer_bit * 0.5

    def test_deeper_buffers_cost_more(self):
        shallow = NoCAreaModel(RouterParameters(vc_depth=2))
        deep = NoCAreaModel(RouterParameters(vc_depth=8))
        assert deep.router_area(5) > shallow.router_area(5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RouterParameters(num_vcs=0)
        with pytest.raises(ValueError):
            NoCAreaModel().router_area(1)
        with pytest.raises(ValueError):
            GateCosts(gates_per_buffer_bit=-1.0)


class TestNoCArea:
    def test_grows_roughly_quadratically(self):
        model = NoCAreaModel()
        area8 = model.mesh_area(8)
        area16 = model.mesh_area(16)
        ratio = area16 / area8
        assert 3.5 < ratio < 4.5

    def test_matches_topology_accounting(self):
        model = NoCAreaModel()
        assert model.mesh_area(6) == pytest.approx(model.noc_area(MeshTopology(rows=6)))

    def test_edge_routers_make_mesh_cheaper_than_naive(self):
        model = NoCAreaModel()
        naive = 16 * (model.router_area(5) + model.network_interface_area())
        assert model.mesh_area(4) < naive + 16 * 4 * model.link_area()


class TestAcceleratorArea:
    def test_more_parameters_cost_more(self):
        model = CNNAcceleratorAreaModel()
        assert model.accelerator_area(1000, 15) > model.accelerator_area(100, 15)

    def test_fixed_costs_present_for_zero_parameters(self):
        model = CNNAcceleratorAreaModel()
        assert model.accelerator_area(0, 15) > 0

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            CNNAcceleratorAreaModel().weight_storage_area(-1)
        with pytest.raises(ValueError):
            CNNAcceleratorAreaModel().line_buffer_area(0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AcceleratorParameters(weight_bits=0)
        with pytest.raises(ValueError):
            AcceleratorParameters(pipelined_kernels=0)

    def test_area_for_model(self):
        from repro.core.detector import build_detector_model

        detector = build_detector_model((8, 7, 4))
        model = CNNAcceleratorAreaModel()
        assert model.area_for_model(detector, 7) == pytest.approx(
            model.accelerator_area(detector.num_parameters, 7)
        )
