"""Unit tests for the baseline detectors."""

import numpy as np
import pytest

from repro.baselines import (
    DecisionStump,
    GradientBoostingDetector,
    LinearSVMDetector,
    PerceptronDetector,
    ThresholdDetector,
    flatten_frames,
)


def make_separable_frames(n=80, seed=0):
    """Synthetic frame-like inputs: attacks have a bright 'route' of pixels."""
    rng = np.random.default_rng(seed)
    half = n // 2
    benign = rng.uniform(0.0, 0.2, size=(half, 6, 5, 4))
    attack = rng.uniform(0.0, 0.2, size=(half, 6, 5, 4))
    attack[:, 2, :, 0] += 0.7  # a horizontal congested route in the E channel
    x = np.concatenate([benign, attack])
    y = np.concatenate([np.zeros(half), np.ones(half)])
    order = rng.permutation(n)
    return x[order], y[order]


class TestFlattenFrames:
    def test_flattens_4d(self):
        assert flatten_frames(np.zeros((3, 6, 5, 4))).shape == (3, 120)

    def test_passthrough_2d(self):
        x = np.zeros((3, 10))
        assert flatten_frames(x).shape == (3, 10)


ALL_DETECTORS = [
    PerceptronDetector,
    LinearSVMDetector,
    GradientBoostingDetector,
    ThresholdDetector,
]


@pytest.mark.parametrize("detector_cls", ALL_DETECTORS)
class TestCommonBehaviour:
    def test_learns_separable_data(self, detector_cls):
        x, y = make_separable_frames()
        detector = detector_cls()
        detector.fit(x, y)
        report = detector.evaluate(x, y)
        assert report.accuracy > 0.85

    def test_scores_in_unit_interval(self, detector_cls):
        x, y = make_separable_frames()
        detector = detector_cls().fit(x, y)
        scores = detector.predict_proba(x)
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_predict_is_binary(self, detector_cls):
        x, y = make_separable_frames()
        detector = detector_cls().fit(x, y)
        assert set(np.unique(detector.predict(x))) <= {0, 1}

    def test_predict_before_fit_raises(self, detector_cls):
        with pytest.raises(RuntimeError):
            detector_cls().predict_proba(np.zeros((2, 6, 5, 4)))

    def test_parameter_count_positive_after_fit(self, detector_cls):
        x, y = make_separable_frames()
        detector = detector_cls().fit(x, y)
        assert detector.num_parameters >= 1


class TestPerceptron:
    def test_parameter_count_matches_features(self):
        x, y = make_separable_frames()
        detector = PerceptronDetector().fit(x, y)
        assert detector.num_parameters == 6 * 5 * 4 + 1

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            PerceptronDetector(learning_rate=0.0)
        with pytest.raises(ValueError):
            PerceptronDetector(l2=-1.0)


class TestSVM:
    def test_decision_function_sign_matches_prediction(self):
        x, y = make_separable_frames()
        detector = LinearSVMDetector().fit(x, y)
        decision = detector.decision_function(x)
        assert np.all((decision > 0) == (detector.predict(x) == 1))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            LinearSVMDetector(epochs=0)


class TestGradientBoosting:
    def test_stump_prediction(self):
        stump = DecisionStump(feature=0, threshold=0.5, left_value=-1.0, right_value=2.0)
        out = stump.predict(np.array([[0.1], [0.9]]))
        assert np.allclose(out, [-1.0, 2.0])

    def test_more_estimators_improve_fit(self):
        x, y = make_separable_frames(seed=3)
        small = GradientBoostingDetector(n_estimators=2, seed=0).fit(x, y)
        large = GradientBoostingDetector(n_estimators=40, seed=0).fit(x, y)
        assert large.evaluate(x, y).accuracy >= small.evaluate(x, y).accuracy

    def test_parameter_count_scales_with_estimators(self):
        x, y = make_separable_frames()
        detector = GradientBoostingDetector(n_estimators=10).fit(x, y)
        assert detector.num_parameters == 41

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            GradientBoostingDetector(n_estimators=0)


class TestThreshold:
    def test_threshold_calibrated_on_benign(self):
        x, y = make_separable_frames()
        detector = ThresholdDetector(statistic="max").fit(x, y)
        benign_max = flatten_frames(x[y == 0]).max(axis=1)
        assert detector.threshold >= np.percentile(benign_max, 90)

    def test_mean_statistic(self):
        x, y = make_separable_frames()
        detector = ThresholdDetector(statistic="mean").fit(x, y)
        assert detector.evaluate(x, y).accuracy > 0.8

    def test_single_parameter(self):
        x, y = make_separable_frames()
        assert ThresholdDetector().fit(x, y).num_parameters == 1

    def test_no_benign_calibration_data(self):
        x, y = make_separable_frames()
        detector = ThresholdDetector().fit(x[y == 1], np.ones(int(y.sum())))
        assert detector.threshold is not None

    def test_invalid_statistic(self):
        with pytest.raises(ValueError):
            ThresholdDetector(statistic="median")
