"""The colluding-flood property: below-threshold sources, contained anyway.

The headline property of cross-window evidence fusion (ISSUE 5 acceptance):
a distributed colluding flood whose **every** per-source FIR sits below the
single-attacker detection threshold must still be contained.  "Below the
threshold" is established in the strongest sense — not only does the raw
per-window detector stay silent on a lone source at that FIR, the *entire*
streak-based defense (guard with evidence fusion disabled) never engages
it.  The same per-source rate, colluding four ways, is then fully fenced
with zero collateral.

The third leg pins the mechanism: with evidence fusion enabled, even the
lone below-threshold flood is eventually convicted through the accumulated
sub-threshold windows — the fused system's detection envelope extends below
the single-window threshold.

This trains one real 8x8 pipeline (the robustness matrix's scale floor), so
the module costs ~15 s; it is the flagship end-to-end property of the
evidence subsystem.
"""

import dataclasses

import pytest

from repro.attacks import RampingFloodAttack, default_attack
from repro.experiments.config import ExperimentConfig
from repro.experiments.mitigation import train_defense_pipeline
from repro.experiments.robustness import (
    DEFAULT_ROBUSTNESS_POLICY,
    run_attack_episode,
)
from repro.runtime.engine import ExperimentEngine

#: Per-source FIR measured below the 8x8 single-attacker threshold: the raw
#: detector fires in at most a couple of isolated windows, which can never
#: complete the policy's engage streak.
STEALTH_FIR = 0.15


@pytest.fixture(scope="module")
def defense_setup():
    engine = ExperimentEngine.disabled()
    fence, builder = train_defense_pipeline(
        ExperimentConfig.for_mesh(8), engine=engine
    )
    return fence, builder


@pytest.fixture(scope="module")
def colluding_attack(defense_setup):
    _, builder = defense_setup
    model = default_attack(
        "colluding", builder.topology, builder.config.sample_period
    )
    return dataclasses.replace(model, fir=STEALTH_FIR)


def lone_flood(model):
    """One colluder's flow in isolation, at the same per-source FIR."""
    return RampingFloodAttack(
        attackers=(model.sources[0],),
        victim=model.victim,
        fir_start=model.fir,
        fir_peak=model.fir,
        ramp_cycles=1,
    )


class TestColludingBelowThresholdProperty:
    def test_lone_source_is_below_the_single_attacker_threshold(
        self, defense_setup, colluding_attack
    ):
        """Without evidence fusion, a lone source at the colluders' FIR is
        never engaged — and the raw detector all but misses it."""
        fence, builder = defense_setup
        report = run_attack_episode(
            fence,
            builder,
            DEFAULT_ROBUSTNESS_POLICY,
            lone_flood(colluding_attack),
            evidence=False,
        )
        detected_windows = sum(1 for window in report.windows if window.detected)
        assert detected_windows < DEFAULT_ROBUSTNESS_POLICY.engage_after
        assert report.engaged_nodes == set()

    def test_colluding_flood_contained_with_zero_collateral(
        self, defense_setup, colluding_attack
    ):
        """All four below-threshold sources end up fenced simultaneously."""
        fence, builder = defense_setup
        report = run_attack_episode(
            fence, builder, DEFAULT_ROBUSTNESS_POLICY, colluding_attack
        )
        truth = set(colluding_attack.containment_nodes)
        assert truth.issubset(report.engaged_nodes)
        assert report.time_to_full_containment is not None
        assert report.collateral_nodes == set()

    def test_evidence_extends_detection_below_the_single_window_threshold(
        self, defense_setup, colluding_attack
    ):
        """With fusion enabled even the lone below-threshold flood is
        convicted from accumulated sub-threshold windows."""
        fence, builder = defense_setup
        report = run_attack_episode(
            fence, builder, DEFAULT_ROBUSTNESS_POLICY, lone_flood(colluding_attack)
        )
        assert set(lone_flood(colluding_attack).attackers).issubset(
            report.engaged_nodes
        )
        assert any(event.kind == "convicted" for event in report.events)
        assert report.collateral_nodes == set()
