"""Multi-attack closed-loop defense: iterative rounds, containment, backoff.

The guard mechanics are isolated from CNN quality with a *blind* oracle
pipeline whose evidence mirrors what congestion actually betrays: an
attacker that is fully quarantined leaves no signature, so the oracle stops
reporting it — exactly the detector-blindness that causes release probing,
and the loudest-first visibility that forces iterative localization rounds.
The full learned loop is exercised on the session's small trained pipeline.
"""

from __future__ import annotations

import math

import pytest

from repro.core.pipeline import LocalizationResult
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.monitor.sampler import MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.noc.stats import LatencyStats
from repro.traffic.scenario import AttackScenario, MultiAttackScenario
from repro.traffic.synthetic import UniformRandomTraffic

ROWS = 6
PERIOD = 96
WARMUP = 32


class BlindOracle:
    """Evidence-faithful oracle: sees only attackers that can still inject.

    Detection mirrors observable congestion — active, non-quarantined
    attackers produce it; fenced attackers do not.  Localization reveals the
    loudest (lowest-id) visible attacker only, forcing the guard through one
    iterative round per attacker, as in the paper's multi-attacker procedure.
    """

    def __init__(self, attackers, simulator, reveal_all=False):
        self.attackers = list(attackers)
        self.simulator = simulator
        self.reveal_all = reveal_all

    def process_sample(self, sample, force_localization=False):
        visible = [
            node
            for node in self.attackers
            if self.simulator.network.injection_limit(node) > 0.0
        ]
        detected = bool(sample.attack_active and visible)
        revealed = visible if self.reveal_all else visible[:1]
        return LocalizationResult(
            cycle=sample.cycle,
            detected=detected,
            detection_probability=1.0 if detected else 0.0,
            attackers=revealed if detected else [],
        )


def two_flow_scenario(topology) -> MultiAttackScenario:
    """Two concurrent floods in disjoint rows of the 6x6 mesh."""
    return MultiAttackScenario(
        flows=(
            AttackScenario(
                attackers=(topology.node_id(4, 4),),
                victim=topology.node_id(1, 4),
                fir=0.8,
            ),
            AttackScenario(
                attackers=(topology.node_id(1, 1),),
                victim=topology.node_id(4, 1),
                fir=0.8,
            ),
        )
    )


def run_multi_attack_episode(
    policy,
    attack_windows=10,
    post_windows=4,
    reveal_all=False,
    attacked=True,
):
    """One live multi-attack episode under the blind oracle guard."""
    simulator = NoCSimulator(
        SimulationConfig(rows=ROWS, warmup_cycles=WARMUP, seed=3)
    )
    simulator.add_source(
        UniformRandomTraffic(simulator.topology, injection_rate=0.02, seed=42)
    )
    scenario = two_flow_scenario(simulator.topology)
    attack_start = WARMUP + 3 * PERIOD
    attack_end = attack_start + attack_windows * PERIOD
    if attacked:
        for source in scenario.attacker_sources(
            simulator.topology,
            seed=43,
            start_cycle=attack_start,
            end_cycle=attack_end,
        ):
            simulator.add_source(source)
    guard = DL2FenceGuard(
        BlindOracle(scenario.attackers, simulator, reveal_all=reveal_all),
        policy,
        attack_start=attack_start,
        attack_end=attack_end,
        true_attackers=scenario.attackers,
    )
    guard.attach(simulator, monitor_config=MonitorConfig(sample_period=PERIOD))
    total_windows = 3 + attack_windows + post_windows
    simulator.run(WARMUP + total_windows * PERIOD + 1)
    return guard.report, scenario, simulator


def no_attack_baseline(attack_windows=10, post_windows=4) -> float:
    """The same workload and horizon with no attacker and no guard."""
    simulator = NoCSimulator(
        SimulationConfig(rows=ROWS, warmup_cycles=WARMUP, seed=3)
    )
    simulator.add_source(
        UniformRandomTraffic(simulator.topology, injection_rate=0.02, seed=42)
    )
    total_windows = 3 + attack_windows + post_windows
    simulator.run(WARMUP + total_windows * PERIOD + 1)
    return simulator.latency(benign_only=True).packet_latency


class TestMultiAttackEndToEnd:
    """Tier-1 end-to-end: two attackers on disjoint victims, both fenced."""

    def test_both_attackers_fenced_and_latency_recovers(self):
        policy = MitigationPolicy.quarantine(
            engage_after=2, release_after=6, flush_queue=True
        )
        report, scenario, _ = run_multi_attack_episode(policy)
        truth = set(scenario.attackers)

        # Both attackers end up fenced, one iterative round each.
        assert truth.issubset(report.engaged_nodes)
        assert report.localization_rounds >= 2
        assert report.time_to_full_containment is not None

        per_attacker = report.per_attacker_time_to_mitigation()
        assert set(per_attacker) == truth
        assert all(value is not None for value in per_attacker.values())
        # The second round necessarily engages later than the first.
        assert report.time_to_full_containment == max(per_attacker.values())

        # Benign latency under full containment recovers near the no-attack
        # baseline (fixed multiple guards against regressions, not noise).
        baseline = no_attack_baseline()
        mitigated = report.post_mitigation_latency()
        assert not math.isnan(mitigated)
        assert mitigated <= 1.5 * baseline

    def test_iterative_rounds_reveal_quieter_attacker(self):
        """With loudest-only evidence the guard needs one round per attacker."""
        policy = MitigationPolicy.quarantine(engage_after=2, release_after=8)
        report, scenario, _ = run_multi_attack_episode(policy)
        engaged_events = [e for e in report.events if e.kind == "engaged"]
        assert len(engaged_events) >= 2
        assert engaged_events[0].round == 1
        # Each round fences exactly the one attacker the evidence revealed.
        assert all(len(e.nodes) == 1 for e in engaged_events[:2])
        first, second = engaged_events[0], engaged_events[1]
        assert second.cycle > first.cycle
        assert set(first.nodes) != set(second.nodes)

    def test_detection_latency_per_attacker_ordering(self):
        policy = MitigationPolicy.quarantine(engage_after=2, release_after=8)
        report, scenario, _ = run_multi_attack_episode(policy)
        latencies = report.per_attacker_detection_latency()
        values = [v for v in latencies.values() if v is not None]
        assert len(values) == 2
        # The quieter attacker surfaces strictly later.
        assert min(values) < max(values)


class TestQuarantineOscillationRegression:
    """Pins the fig6 quarantine release/re-engage oscillation below a bound.

    A fully fenced attacker leaves no evidence, so the guard inevitably
    probes by releasing; without the re-engage backoff the probe loop
    oscillates for the whole episode.  With backoff 2 the k-th hold lasts
    ``release_after * 2**(k-1)`` windows, so re-engagements over W attack
    windows are bounded by ~log2(W / release_after): K = 4 for W = 40 and
    release_after = 2 — versus ~W/3 (13) with fixed-threshold hysteresis.
    """

    K = 4
    ATTACK_WINDOWS = 40

    def _oscillation_policy(self, backoff):
        return MitigationPolicy.quarantine(
            engage_after=1, release_after=2, stale_after=2, reengage_backoff=backoff
        )

    def _single_attacker_report(self, backoff):
        simulator = NoCSimulator(
            SimulationConfig(rows=ROWS, warmup_cycles=WARMUP, seed=3)
        )
        attacker = simulator.topology.node_id(4, 4)
        scenario = AttackScenario(
            attackers=(attacker,), victim=simulator.topology.node_id(1, 1), fir=0.8
        )
        attack_start = WARMUP + 2 * PERIOD
        attack_end = attack_start + self.ATTACK_WINDOWS * PERIOD
        simulator.add_source(
            scenario.attacker_source(
                simulator.topology,
                seed=5,
                start_cycle=attack_start,
                end_cycle=attack_end,
            )
        )
        guard = DL2FenceGuard(
            BlindOracle([attacker], simulator),
            self._oscillation_policy(backoff),
            attack_start=attack_start,
            attack_end=attack_end,
            true_attackers=(attacker,),
        )
        guard.attach(simulator, monitor_config=MonitorConfig(sample_period=PERIOD))
        total_windows = 2 + self.ATTACK_WINDOWS + 4
        simulator.run(WARMUP + total_windows * PERIOD + 1)
        return guard.report, attacker

    def test_reengagements_bounded_by_backoff(self):
        report, attacker = self._single_attacker_report(backoff=2.0)
        counts = report.engage_counts()
        assert counts.get(attacker, 0) >= 1
        assert counts[attacker] - 1 <= self.K, (
            f"quarantined attacker oscillated {counts[attacker] - 1} times "
            f"(> K={self.K}) over {self.ATTACK_WINDOWS} attack windows"
        )

    def test_backoff_strictly_reduces_oscillation(self):
        """The exponential hold beats fixed-threshold hysteresis."""
        fixed, attacker = self._single_attacker_report(backoff=1.0)
        backed, _ = self._single_attacker_report(backoff=2.0)
        assert backed.engage_counts()[attacker] < fixed.engage_counts()[attacker]


class TestEngagementCap:
    """max_engaged_nodes bounds the blast radius of an over-approximation."""

    def test_cap_limits_simultaneous_engagements(self):
        from types import SimpleNamespace

        class SupersetFence:
            """Stub localizer always over-approximating to five candidates."""

            def process_sample(self, sample, force_localization=False):
                return LocalizationResult(
                    cycle=sample.cycle,
                    detected=True,
                    detection_probability=0.9,
                    attackers=[1, 2, 3, 4, 5],
                )

        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        policy = MitigationPolicy.throttle(0.1, engage_after=1, max_engaged_nodes=2)
        guard = DL2FenceGuard(SupersetFence(), policy)
        guard.simulator = simulator
        for index in range(4):
            guard.on_sample(SimpleNamespace(cycle=100 * (index + 1)), simulator)
        assert len(guard.engaged_nodes) == 2
        assert len(simulator.restricted_nodes) == 2


class TestTrainedPipelineMultiAttack:
    """The full learned loop against a concurrent 2-flow flood."""

    def test_learned_guard_engages_on_multi_attack(
        self, trained_pipeline, small_builder
    ):
        from repro.experiments.mitigation import (
            default_multi_scenario,
            run_defended_episode,
        )

        scenario = default_multi_scenario(small_builder, num_flows=2, fir=0.8)
        report, baseline = run_defended_episode(
            trained_pipeline,
            small_builder,
            MitigationPolicy.quarantine(engage_after=2, release_after=6),
            fir=0.8,
            scenario=scenario,
        )
        assert baseline > 0.0
        assert report.first_detection_cycle is not None
        assert report.engagement_cycle is not None
        # The learned localizer fences at least one of the true attackers.
        assert set(scenario.attackers) & report.engaged_nodes
