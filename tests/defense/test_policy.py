"""Unit tests for mitigation policy configuration."""

import pytest

from repro.defense.policy import MitigationPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = MitigationPolicy()
        assert policy.action == "throttle"

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            MitigationPolicy(action="drop_tables")

    @pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 1.5])
    def test_throttle_factor_must_be_fractional(self, factor):
        with pytest.raises(ValueError):
            MitigationPolicy(throttle_factor=factor)

    @pytest.mark.parametrize(
        "field", ["engage_after", "release_after", "stale_after"]
    )
    def test_hysteresis_counts_positive(self, field):
        with pytest.raises(ValueError):
            MitigationPolicy(**{field: 0})


class TestInjectionLimit:
    def test_throttle_limit_is_factor(self):
        assert MitigationPolicy.throttle(0.25).injection_limit == 0.25

    def test_quarantine_limit_is_zero(self):
        assert MitigationPolicy.quarantine().injection_limit == 0.0
        # throttle_factor is irrelevant for quarantine
        assert MitigationPolicy(action="quarantine", throttle_factor=0.5).injection_limit == 0.0


class TestBackoffThresholds:
    def test_first_engagement_uses_base_thresholds(self):
        policy = MitigationPolicy(release_after=3, stale_after=2, reengage_backoff=2.0)
        assert policy.release_threshold(1) == 3
        assert policy.stale_threshold(1) == 2

    def test_thresholds_double_per_reengagement(self):
        policy = MitigationPolicy(release_after=3, stale_after=2, reengage_backoff=2.0)
        assert [policy.release_threshold(k) for k in (1, 2, 3, 4)] == [3, 6, 12, 24]
        assert [policy.stale_threshold(k) for k in (1, 2, 3)] == [2, 4, 8]

    def test_unit_backoff_keeps_fixed_thresholds(self):
        policy = MitigationPolicy(release_after=3, reengage_backoff=1.0)
        assert policy.release_threshold(10) == 3

    def test_fractional_backoff_rounds_up(self):
        policy = MitigationPolicy(release_after=3, reengage_backoff=1.5)
        assert policy.release_threshold(2) == 5  # ceil(3 * 1.5)

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ValueError):
            MitigationPolicy(reengage_backoff=0.5)

    def test_max_engaged_nodes_validated(self):
        with pytest.raises(ValueError):
            MitigationPolicy(max_engaged_nodes=0)
        assert MitigationPolicy(max_engaged_nodes=4).max_engaged_nodes == 4
        assert MitigationPolicy().max_engaged_nodes is None


class TestNames:
    def test_throttle_name_includes_factor(self):
        assert MitigationPolicy.throttle(0.1).name == "throttle@0.1"

    def test_quarantine_name(self):
        assert MitigationPolicy.quarantine().name == "quarantine"

    def test_constructors_forward_overrides(self):
        policy = MitigationPolicy.throttle(0.2, engage_after=5, flush_queue=True)
        assert policy.engage_after == 5
        assert policy.flush_queue
        assert MitigationPolicy.quarantine(release_after=7).release_after == 7
