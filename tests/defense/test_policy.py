"""Unit tests for mitigation policy configuration."""

import pytest

from repro.defense.policy import MitigationPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = MitigationPolicy()
        assert policy.action == "throttle"

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            MitigationPolicy(action="drop_tables")

    @pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 1.5])
    def test_throttle_factor_must_be_fractional(self, factor):
        with pytest.raises(ValueError):
            MitigationPolicy(throttle_factor=factor)

    @pytest.mark.parametrize(
        "field", ["engage_after", "release_after", "stale_after"]
    )
    def test_hysteresis_counts_positive(self, field):
        with pytest.raises(ValueError):
            MitigationPolicy(**{field: 0})


class TestInjectionLimit:
    def test_throttle_limit_is_factor(self):
        assert MitigationPolicy.throttle(0.25).injection_limit == 0.25

    def test_quarantine_limit_is_zero(self):
        assert MitigationPolicy.quarantine().injection_limit == 0.0
        # throttle_factor is irrelevant for quarantine
        assert MitigationPolicy(action="quarantine", throttle_factor=0.5).injection_limit == 0.0


class TestNames:
    def test_throttle_name_includes_factor(self):
        assert MitigationPolicy.throttle(0.1).name == "throttle@0.1"

    def test_quarantine_name(self):
        assert MitigationPolicy.quarantine().name == "quarantine"

    def test_constructors_forward_overrides(self):
        policy = MitigationPolicy.throttle(0.2, engage_after=5, flush_queue=True)
        assert policy.engage_after == 5
        assert policy.flush_queue
        assert MitigationPolicy.quarantine(release_after=7).release_after == 7
