"""Unit tests for the defense report metrics and rendering."""

import math

import pytest

from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseEvent, DefenseReport, WindowRecord


def make_report(**kwargs):
    return DefenseReport(
        policy=MitigationPolicy.throttle(0.1), sample_period=100, **kwargs
    )


def window(index, phase, latency, delivered, detected=False, restricted=()):
    return WindowRecord(
        index=index,
        cycle=100 * (index + 1),
        detected=detected,
        probability=0.9 if detected else 0.1,
        phase=phase,
        restricted=tuple(restricted),
        benign_latency=latency,
        benign_delivered=delivered,
    )


class TestPhaseLatency:
    def test_weighted_by_delivered_packets(self):
        report = make_report()
        report.windows = [
            window(0, "mitigated", 10.0, 1),
            window(1, "mitigated", 20.0, 3),
        ]
        assert report.phase_latency("mitigated") == pytest.approx(17.5)

    def test_skip_drops_settle_windows(self):
        report = make_report()
        report.windows = [
            window(0, "mitigated", 100.0, 5),
            window(1, "mitigated", 10.0, 5),
        ]
        assert report.post_mitigation_latency(skip=1) == pytest.approx(10.0)

    def test_post_mitigation_bounded_at_attack_end(self):
        """Engaged windows after the attack ended must not pad the metric."""
        report = make_report(attack_end=300)
        report.windows = [
            window(0, "mitigated", 100.0, 5),  # settle window, skipped
            window(1, "mitigated", 20.0, 5),   # cycle 200: during attack
            window(2, "mitigated", 20.0, 5),   # cycle 300: during attack
            window(3, "mitigated", 5.0, 50),   # cycle 400: attack over
        ]
        assert report.post_mitigation_latency(skip=1) == pytest.approx(20.0)

    def test_empty_phase_is_nan(self):
        report = make_report()
        assert math.isnan(report.phase_latency("attack"))

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError):
            make_report().phase_latency("recovering")

    def test_windows_without_deliveries_ignored(self):
        report = make_report()
        report.windows = [
            window(0, "attack", math.nan, 0),
            window(1, "attack", 12.0, 2),
        ]
        assert report.phase_latency("attack") == pytest.approx(12.0)


class TestPreAttackLatency:
    def test_excludes_benign_windows_after_detection(self):
        """Post-release 'benign' windows may still drain attack backlog."""
        report = make_report()
        report.events = [DefenseEvent(cycle=300, kind="detected")]
        report.windows = [
            window(0, "benign", 10.0, 5),
            window(1, "benign", 10.0, 5),
            window(2, "attack", 50.0, 5, detected=True),
            window(3, "benign", 90.0, 5),  # after release: excluded
        ]
        assert report.pre_attack_latency() == pytest.approx(10.0)

    def test_uses_all_benign_windows_when_never_detected(self):
        report = make_report()
        report.windows = [
            window(0, "benign", 10.0, 5),
            window(1, "benign", 20.0, 5),
        ]
        assert report.pre_attack_latency() == pytest.approx(15.0)

    def test_undetected_attack_windows_excluded_via_attack_start(self):
        """Ground-truth attack_start bounds the baseline even if the
        detector misses the first attack windows."""
        report = make_report(attack_start=150)
        report.windows = [
            window(0, "benign", 10.0, 5),  # cycle 100: truly pre-attack
            window(1, "benign", 60.0, 5),  # cycle 200: missed attack window
        ]
        assert report.pre_attack_latency() == pytest.approx(10.0)


class TestHeadlineMetrics:
    def make_engaged_report(self):
        report = make_report(attack_start=250, true_attackers=(5,))
        report.events = [
            DefenseEvent(cycle=300, kind="detected"),
            DefenseEvent(cycle=400, kind="engaged", nodes=(5, 9)),
            DefenseEvent(cycle=600, kind="rolled_back", nodes=(9,)),
            DefenseEvent(cycle=900, kind="released", nodes=(5,)),
        ]
        report.windows = [
            window(1, "benign", 9.0, 5),
            window(2, "attack", 30.0, 5, detected=True),
            window(3, "mitigated", 10.0, 5, detected=True, restricted=(5, 9)),
            window(4, "mitigated", 10.0, 5, restricted=(5,)),
        ]
        return report

    def test_event_cycles(self):
        report = self.make_engaged_report()
        assert report.first_detection_cycle == 300
        assert report.engagement_cycle == 400
        assert report.release_cycle == 900

    def test_latency_metrics_relative_to_attack_start(self):
        report = self.make_engaged_report()
        assert report.detection_latency == 50
        assert report.time_to_mitigation == 150

    def test_latencies_none_without_attack_start(self):
        report = make_report()
        report.events = [DefenseEvent(cycle=300, kind="detected")]
        assert report.detection_latency is None
        assert report.time_to_mitigation is None

    def test_pre_attack_false_positive_does_not_count_as_detection(self):
        report = make_report(attack_start=500)
        report.windows = [
            window(2, "attack", 20.0, 5, detected=True),  # cycle 300: FP
        ]
        assert report.detection_latency is None
        assert report.time_to_mitigation is None
        report.windows.append(window(6, "attack", 30.0, 5, detected=True))
        assert report.detection_latency == 200

    def test_detection_streak_bridging_attack_start_still_counts(self):
        """A FP streak running into the real attack counts from attack_start."""
        report = make_report(attack_start=250)
        report.windows = [
            window(1, "attack", 15.0, 5, detected=True),  # cycle 200: FP
            window(2, "mitigated", 15.0, 5, detected=True, restricted=(5,)),
        ]
        assert report.detection_latency == 300 - 250
        assert report.time_to_mitigation == 300 - 250

    def test_release_cycle_invalidated_by_reengagement(self):
        report = make_report()
        report.events = [
            DefenseEvent(cycle=400, kind="engaged", nodes=(5,)),
            DefenseEvent(cycle=800, kind="released", nodes=(5,)),
            DefenseEvent(cycle=1000, kind="engaged", nodes=(5,)),
        ]
        assert report.release_cycle is None
        report.events.append(DefenseEvent(cycle=1400, kind="released", nodes=(5,)))
        assert report.release_cycle == 1400

    def test_node_sets(self):
        report = self.make_engaged_report()
        assert report.engaged_nodes == {5, 9}
        assert report.collateral_nodes == {9}
        assert report.collateral_node_windows == 1

    def test_recovery_ratio(self):
        report = self.make_engaged_report()
        assert report.recovery_ratio(baseline_latency=8.0) == pytest.approx(1.25)
        assert math.isnan(report.recovery_ratio(0.0))


class TestPerAttackerMetrics:
    """Multi-attack accounting: per-attacker latencies and containment."""

    def make_multi_report(self):
        report = make_report(attack_start=200, true_attackers=(5, 9))
        report.windows = [
            WindowRecord(index=0, cycle=100, detected=False, probability=0.1,
                         phase="benign"),
            WindowRecord(index=1, cycle=200, detected=True, probability=0.9,
                         phase="attack", attackers=(5,)),
            WindowRecord(index=2, cycle=300, detected=True, probability=0.9,
                         phase="attack", attackers=(5,), restricted=(5,)),
            WindowRecord(index=3, cycle=400, detected=True, probability=0.9,
                         phase="mitigated", attackers=(9,), restricted=(5,)),
            WindowRecord(index=4, cycle=500, detected=True, probability=0.9,
                         phase="mitigated", attackers=(9,), restricted=(5, 9)),
        ]
        report.events = [
            DefenseEvent(cycle=200, kind="detected"),
            DefenseEvent(cycle=300, kind="engaged", nodes=(5,), round=1),
            DefenseEvent(cycle=500, kind="engaged", nodes=(9,), round=2),
        ]
        return report

    def test_per_attacker_detection_latency(self):
        report = self.make_multi_report()
        assert report.per_attacker_detection_latency() == {5: 0, 9: 200}

    def test_per_attacker_time_to_mitigation(self):
        report = self.make_multi_report()
        assert report.per_attacker_time_to_mitigation() == {5: 100, 9: 300}

    def test_containment_requires_all_attackers(self):
        report = self.make_multi_report()
        assert report.containment_cycle == 500
        assert report.time_to_full_containment == 300

    def test_containment_none_until_all_fenced(self):
        report = self.make_multi_report()
        report.windows = report.windows[:4]  # 9 never restricted
        assert report.containment_cycle is None
        assert report.time_to_full_containment is None

    def test_localization_rounds_and_engage_counts(self):
        report = self.make_multi_report()
        assert report.localization_rounds == 2
        assert report.engage_counts() == {5: 1, 9: 1}
        assert report.reengagements == 0
        report.events.append(DefenseEvent(cycle=600, kind="engaged", nodes=(5,)))
        assert report.reengagements == 1

    def test_unlocalized_attacker_reports_none(self):
        report = self.make_multi_report()
        report.true_attackers = (5, 9, 31)
        latencies = report.per_attacker_detection_latency()
        assert latencies[31] is None


class TestAsDict:
    def test_round_trips_all_sections(self):
        report = TestPerAttackerMetrics().make_multi_report()
        data = report.as_dict()
        assert set(data) >= {
            "policy", "windows", "events", "summary",
            "per_attacker_detection_latency", "per_attacker_time_to_mitigation",
        }
        assert data["policy"]["reengage_backoff"] == report.policy.reengage_backoff
        assert len(data["windows"]) == len(report.windows)
        assert data["events"][1]["round"] == 1
        assert data["per_attacker_detection_latency"] == {"5": 0, "9": 200}

    def test_nan_scrubbed_for_equality(self):
        """Two identical reports must compare equal — NaN would break that."""
        a = TestPerAttackerMetrics().make_multi_report()
        b = TestPerAttackerMetrics().make_multi_report()
        assert a.as_dict() == b.as_dict()
        flat = repr(a.as_dict())
        assert "nan" not in flat


class TestRendering:
    def test_summary_keys(self):
        summary = make_report().summary()
        assert {
            "policy",
            "detection_latency",
            "time_to_mitigation",
            "post_mitigation_latency",
            "collateral_nodes",
        } <= set(summary)

    def test_timeline_lists_windows_and_events(self):
        report = make_report()
        report.windows = [window(0, "benign", 9.5, 3)]
        report.events = [DefenseEvent(cycle=100, kind="detected", detail="p=0.97")]
        text = report.format_timeline()
        assert "benign" in text
        assert "9.5" in text
        assert "detected" in text
        assert "p=0.97" in text


class TestEventCounts:
    def test_defaults_empty(self):
        report = make_report()
        assert report.event_counts == {}
        assert report.as_dict()["event_counts"] == {}

    def test_as_dict_sorts_keys(self):
        report = make_report()
        report.event_counts = {"releases": 1, "engagements": 2}
        assert list(report.as_dict()["event_counts"]) == ["engagements", "releases"]

    def test_payload_round_trip(self):
        report = make_report()
        report.event_counts = {"engagements": 2, "convictions": 1}
        rebuilt = DefenseReport.from_payload(report.to_payload())
        assert rebuilt.event_counts == {"engagements": 2, "convictions": 1}

    def test_old_payloads_without_counts_still_load(self):
        """Cached payloads written before event_counts existed must rebuild."""
        payload = make_report().to_payload()
        del payload["event_counts"]
        assert DefenseReport.from_payload(payload).event_counts == {}
