"""Tests for the closed-loop defense guard.

Hysteresis and rollback mechanics are exercised with a scripted stub
pipeline (deterministic, no CNNs); the closed loop against live traffic is
exercised with an oracle pipeline (perfect detection/localization), and the
full learned pipeline is integrated via the session ``trained_pipeline``.
"""

from types import SimpleNamespace

import pytest

from repro.core.pipeline import LocalizationResult
from repro.defense.guard import DL2FenceGuard
from repro.defense.policy import MitigationPolicy
from repro.monitor.sampler import MonitorConfig
from repro.noc.packet import Packet
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.traffic.flooding import FloodingAttacker, FloodingConfig


class ScriptedFence:
    """Stub pipeline replaying a fixed sequence of (detected, attackers)."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def process_sample(self, sample, force_localization=False):
        detected, attackers = self.script[self.calls]
        self.calls += 1
        return LocalizationResult(
            cycle=sample.cycle,
            detected=detected,
            detection_probability=0.9 if detected else 0.1,
            attackers=list(attackers),
        )


class OracleFence:
    """Perfect pipeline: detects exactly while the attack window is active."""

    def __init__(self, attackers):
        self.attackers = list(attackers)

    def process_sample(self, sample, force_localization=False):
        return LocalizationResult(
            cycle=sample.cycle,
            detected=sample.attack_active,
            detection_probability=1.0 if sample.attack_active else 0.0,
            attackers=list(self.attackers) if sample.attack_active else [],
        )


def drive(script, policy, **guard_kwargs):
    """Run a scripted sequence through a guard on an idle 4x4 simulator."""
    simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
    guard = DL2FenceGuard(ScriptedFence(script), policy, **guard_kwargs)
    guard.simulator = simulator
    for index in range(len(script)):
        guard.on_sample(SimpleNamespace(cycle=100 * (index + 1)), simulator)
    return guard, simulator


class TestEngagementHysteresis:
    def test_engages_after_consecutive_flagged_windows(self):
        policy = MitigationPolicy.throttle(0.1, engage_after=2)
        guard, simulator = drive(
            [(True, [5]), (True, [5])], policy
        )
        assert guard.engaged_nodes == [5]
        assert simulator.network.injection_limit(5) == 0.1

    def test_single_detection_does_not_engage(self):
        policy = MitigationPolicy.throttle(0.1, engage_after=2)
        guard, simulator = drive([(True, [5])], policy)
        assert guard.engaged_nodes == []
        assert simulator.network.injection_limit(5) == 1.0

    def test_one_off_flagged_node_not_engaged(self):
        """A node flagged in only one of the detection windows stays free."""
        policy = MitigationPolicy.throttle(0.1, engage_after=2)
        guard, simulator = drive(
            [(True, [5, 7]), (True, [5])], policy
        )
        assert guard.engaged_nodes == [5]
        assert simulator.network.injection_limit(7) == 1.0

    def test_clean_window_breaks_streak_before_engagement(self):
        policy = MitigationPolicy.throttle(0.1, engage_after=2)
        guard, _ = drive(
            [(True, [5]), (False, []), (True, [5])], policy
        )
        assert guard.engaged_nodes == []

    def test_quarantine_applies_zero_limit(self):
        policy = MitigationPolicy.quarantine(engage_after=1)
        guard, simulator = drive([(True, [3])], policy)
        assert guard.engaged_nodes == [3]
        assert simulator.network.injection_limit(3) == 0.0


class TestReleaseHysteresis:
    def test_releases_after_clean_windows(self):
        policy = MitigationPolicy.throttle(0.1, engage_after=1, release_after=2)
        guard, simulator = drive(
            [(True, [5]), (False, []), (False, [])], policy
        )
        assert guard.engaged_nodes == []
        assert simulator.network.injection_limit(5) == 1.0
        kinds = [event.kind for event in guard.report.events]
        assert kinds == ["detected", "engaged", "released"]

    def test_not_released_while_detections_continue(self):
        policy = MitigationPolicy.throttle(0.1, engage_after=1, release_after=2)
        guard, _ = drive(
            [(True, [5]), (False, []), (True, [5]), (False, [])], policy
        )
        assert guard.engaged_nodes == [5]

    def test_stale_node_rolled_back_individually(self):
        """An engaged node the localizer stops flagging is released early."""
        policy = MitigationPolicy.throttle(
            0.1, engage_after=1, release_after=10, stale_after=2
        )
        guard, simulator = drive(
            [(True, [5, 9]), (True, [5]), (True, [5])], policy
        )
        assert guard.engaged_nodes == [5]
        assert simulator.network.injection_limit(9) == 1.0
        assert any(
            event.kind == "rolled_back" and event.nodes == (9,)
            for event in guard.report.events
        )

    def test_full_disengage_via_stale_rollback_records_release(self):
        """When stale rollback lifts the last restriction, release_cycle is set."""
        policy = MitigationPolicy.throttle(
            0.1, engage_after=1, release_after=10, stale_after=2
        )
        guard, _ = drive(
            [(True, [5]), (True, [9]), (True, [9])], policy
        )
        assert 5 not in guard.engaged_nodes  # 5 rolled back as stale
        report = guard.report
        assert report.release_cycle is None or guard.engaged_nodes
        # drive node 9 out as well: everything disengaged -> full release
        guard2, _ = drive(
            [(True, [5]), (True, []), (True, [])], policy
        )
        assert guard2.engaged_nodes == []
        assert guard2.report.release_cycle is not None

    def test_release_restores_previous_limit(self):
        """Rollback restores the limit the node had before engagement."""
        policy = MitigationPolicy.throttle(0.5, engage_after=1, release_after=1)
        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        simulator.network.set_injection_limit(5, 0.8)
        guard = DL2FenceGuard(ScriptedFence([(True, [5]), (False, [])]), policy)
        guard.simulator = simulator
        guard.on_sample(SimpleNamespace(cycle=100), simulator)
        assert simulator.network.injection_limit(5) == 0.5
        guard.on_sample(SimpleNamespace(cycle=200), simulator)
        assert simulator.network.injection_limit(5) == 0.8


class TestFlushQueue:
    def test_engage_flushes_backlog(self):
        policy = MitigationPolicy.quarantine(engage_after=1, flush_queue=True)
        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        for _ in range(4):
            simulator.network.enqueue_packet(
                Packet(source=5, destination=0, size_flits=4, created_cycle=0)
            )
        guard = DL2FenceGuard(ScriptedFence([(True, [5])]), policy)
        guard.simulator = simulator
        guard.on_sample(SimpleNamespace(cycle=100), simulator)
        assert len(simulator.network.source_queues[5]) == 0
        assert simulator.network.dropped_packets == 4


class TestReportContents:
    def test_phases_and_latencies(self):
        policy = MitigationPolicy.throttle(0.1, engage_after=2)
        guard, _ = drive(
            [(False, []), (True, [5]), (True, [5]), (True, [5])],
            policy,
            attack_start=150,
            true_attackers=(5,),
        )
        report = guard.report
        assert [w.phase for w in report.windows] == [
            "benign",
            "attack",
            "attack",
            "mitigated",
        ]
        assert report.detection_latency == 200 - 150
        assert report.time_to_mitigation == 300 - 150
        assert report.collateral_nodes == set()

    def test_collateral_accounting(self):
        policy = MitigationPolicy.throttle(0.1, engage_after=1)
        guard, _ = drive(
            [(True, [5, 9]), (True, [5, 9])],
            policy,
            true_attackers=(5,),
        )
        assert guard.report.collateral_nodes == {9}
        assert guard.report.collateral_node_windows == 2

    def test_window_latency_accounting(self):
        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        guard = DL2FenceGuard(ScriptedFence([(False, []), (False, [])]))
        guard.simulator = simulator

        benign = Packet(source=0, destination=1, created_cycle=0)
        benign.injected_cycle, benign.ejected_cycle = 2, 10
        malicious = Packet(source=2, destination=1, created_cycle=0, is_malicious=True)
        malicious.injected_cycle, malicious.ejected_cycle = 1, 21
        simulator.stats.delivered.extend([benign, malicious])
        guard.on_sample(SimpleNamespace(cycle=100), simulator)

        window = guard.report.windows[0]
        assert window.benign_latency == 10.0
        assert window.benign_delivered == 1
        assert window.malicious_delivered == 1

        # the second window only sees deliveries that happened after the first
        guard.on_sample(SimpleNamespace(cycle=200), simulator)
        assert guard.report.windows[1].benign_delivered == 0


class TestClosedLoopWithOracle:
    """The guard against live traffic, isolating mitigation from CNN quality."""

    ROWS = 8
    PERIOD = 256
    WARMUP = 64

    def _run(self, policy, attack_windows=10, post_windows=3):
        simulator = NoCSimulator(
            SimulationConfig(rows=self.ROWS, warmup_cycles=self.WARMUP, seed=3)
        )
        from repro.traffic.synthetic import UniformRandomTraffic

        simulator.add_source(
            UniformRandomTraffic(simulator.topology, injection_rate=0.02, seed=42)
        )
        attacker = simulator.topology.node_id(6, 6)
        victim = simulator.topology.node_id(1, 1)
        attack_start = self.WARMUP + 3 * self.PERIOD
        attack_end = attack_start + attack_windows * self.PERIOD
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(
                    attackers=(attacker,),
                    victim=victim,
                    fir=0.8,
                    start_cycle=attack_start,
                    end_cycle=attack_end,
                ),
                simulator.topology,
                seed=43,
            )
        )
        guard = DL2FenceGuard(
            OracleFence([attacker]),
            policy,
            attack_start=attack_start,
            true_attackers=(attacker,),
        )
        guard.attach(simulator, monitor_config=MonitorConfig(sample_period=self.PERIOD))
        total_windows = 3 + attack_windows + post_windows
        simulator.run(self.WARMUP + total_windows * self.PERIOD + 1)
        return guard.report

    def test_throttling_restores_benign_latency(self):
        report = self._run(
            MitigationPolicy.quarantine(
                engage_after=2, release_after=6, flush_queue=True
            )
        )
        pre = report.pre_attack_latency()
        attacked = report.attack_latency()
        mitigated = report.post_mitigation_latency()
        assert attacked > pre  # the attack measurably hurt benign traffic
        assert mitigated < attacked  # mitigation clawed latency back
        assert mitigated <= pre * 1.25  # ... to near the no-attack level

    def test_hysteresis_releases_after_attack_stops(self):
        report = self._run(
            MitigationPolicy.throttle(
                0.1, engage_after=2, release_after=2, flush_queue=True
            ),
            attack_windows=6,
            post_windows=5,
        )
        assert report.engagement_cycle is not None
        assert report.release_cycle is not None
        assert report.release_cycle > report.engagement_cycle
        # nothing left restricted at the end of the run
        assert report.windows[-1].restricted == ()


class TestTrainedPipelineIntegration:
    """The full learned loop on the session's small trained pipeline."""

    def _simulator(self, builder, scenario=None, fir=0.8, windows=8):
        config = builder.config
        simulator = NoCSimulator(
            SimulationConfig(
                rows=config.rows, warmup_cycles=config.warmup_cycles, seed=5
            )
        )
        simulator.add_source(builder.make_workload("blackscholes", seed=77))
        attack_start = config.warmup_cycles + 2 * config.sample_period
        if scenario is not None:
            simulator.add_source(
                FloodingAttacker(
                    FloodingConfig(
                        attackers=scenario.attackers,
                        victim=scenario.victim,
                        fir=fir,
                        start_cycle=attack_start,
                    ),
                    builder.topology,
                    seed=78,
                )
            )
        cycles = config.warmup_cycles + windows * config.sample_period + 1
        return simulator, attack_start, cycles

    def test_engages_on_sustained_attack(
        self, trained_pipeline, small_builder, example_scenario
    ):
        simulator, attack_start, cycles = self._simulator(
            small_builder, scenario=example_scenario
        )
        guard = DL2FenceGuard(
            trained_pipeline,
            MitigationPolicy.throttle(0.1, engage_after=2),
            attack_start=attack_start,
            true_attackers=example_scenario.attackers,
        )
        guard.attach(
            simulator,
            monitor_config=MonitorConfig(
                sample_period=small_builder.config.sample_period
            ),
        )
        simulator.run(cycles)
        report = guard.report
        assert report.first_detection_cycle is not None
        assert report.engagement_cycle is not None
        assert report.engaged_nodes

    def test_does_not_engage_on_benign_traffic(
        self, trained_pipeline, small_builder
    ):
        simulator, _, cycles = self._simulator(small_builder, scenario=None)
        guard = DL2FenceGuard(
            trained_pipeline, MitigationPolicy.throttle(0.1, engage_after=2)
        )
        guard.attach(
            simulator,
            monitor_config=MonitorConfig(
                sample_period=small_builder.config.sample_period
            ),
        )
        simulator.run(cycles)
        assert guard.report.engagement_cycle is None
        assert guard.engaged_nodes == []
        assert simulator.restricted_nodes == []
