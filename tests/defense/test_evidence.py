"""Unit tests for the cross-window evidence accumulator."""

import pytest

from repro.core.pipeline import LocalizationResult
from repro.defense.evidence import EvidenceAccumulator, EvidenceConfig


def result(attackers=(), frontier=(), estimated=None, detected=True, p=0.9):
    return LocalizationResult(
        cycle=0,
        detected=detected,
        detection_probability=p,
        attackers=list(attackers),
        frontier=list(frontier),
        estimated_attacker_count=(
            estimated if estimated is not None else len(attackers)
        ),
    )


class TestEvidenceConfig:
    def test_defaults_valid(self):
        config = EvidenceConfig()
        assert config.release_threshold < config.conviction_threshold

    def test_validation(self):
        with pytest.raises(ValueError):
            EvidenceConfig(decay=1.0)
        with pytest.raises(ValueError):
            EvidenceConfig(conviction_threshold=0.0)
        with pytest.raises(ValueError):
            EvidenceConfig(release_threshold=5.0)
        with pytest.raises(ValueError):
            EvidenceConfig(tlm_weight=0.0)
        with pytest.raises(ValueError):
            EvidenceConfig(probability_floor=1.5)
        with pytest.raises(ValueError):
            EvidenceConfig(calibration_margin=-0.1)

    def test_stealth_floor_uncalibrated_uses_static_floor(self):
        config = EvidenceConfig(probability_floor=0.25)
        assert config.stealth_floor(None) == 0.25

    def test_stealth_floor_tracks_detector_resting_point(self):
        """A detector humming at 0.35 must not testify at 0.3; one resting
        at 0.04 must."""
        config = EvidenceConfig(probability_floor=0.25, calibration_margin=0.04)
        assert config.stealth_floor(0.36) == pytest.approx(0.40)
        assert config.stealth_floor(0.03) == pytest.approx(0.07)


class TestWindowWeight:
    def test_detected_windows_always_testify(self):
        acc = EvidenceAccumulator(16)
        assert acc.window_weight(True, 0.0) == 1.0

    def test_floor_gates_not_scales(self):
        acc = EvidenceAccumulator(16, EvidenceConfig(probability_floor=0.25))
        assert acc.window_weight(False, 0.3) == 1.0
        assert acc.window_weight(False, 0.2) == 0.0

    def test_calibrated_floor(self):
        acc = EvidenceAccumulator(16, EvidenceConfig(calibration_margin=0.04))
        assert acc.window_weight(False, 0.3, benign_calibration=0.35) == 0.0
        assert acc.window_weight(False, 0.41, benign_calibration=0.35) == 1.0


class TestConvictionDynamics:
    CONFIG = EvidenceConfig(
        decay=0.9, conviction_threshold=3.4, release_threshold=0.75
    )

    def test_four_consecutive_namings_convict(self):
        acc = EvidenceAccumulator(64, self.CONFIG)
        fresh = []
        for _ in range(4):
            fresh = acc.observe(result(attackers=[5]), 1.0)
        assert fresh == [5]
        assert acc.convicted_nodes() == [5]

    def test_three_consecutive_do_not_convict(self):
        acc = EvidenceAccumulator(64, self.CONFIG)
        for _ in range(3):
            assert acc.observe(result(attackers=[5]), 1.0) == []
        assert acc.convicted_nodes() == []

    def test_gappy_phantom_trajectory_stays_below_bar(self):
        """The measured spillover-phantom pattern (4 namings in 6 windows)."""
        acc = EvidenceAccumulator(64, self.CONFIG)
        pattern = [True, False, True, True, False, True]
        for named in pattern:
            acc.observe(result(attackers=[7] if named else []), 1.0)
        assert acc.convicted_nodes() == []

    def test_cross_dwell_memory_carries_suspicion(self):
        """A silent dwell retains suspicion: after three namings and eight
        quiet windows, three further namings convict — one fewer than a
        fresh node needs.  This is the migrating-attacker shape a
        memoryless per-window localizer cannot pin."""
        acc = EvidenceAccumulator(64, self.CONFIG)
        for _ in range(3):
            acc.observe(result(attackers=[9]), 1.0)
        for _ in range(8):
            acc.observe(result(), 0.0)
        assert acc.suspicion_of(9) > 1.0  # memory survived the dwell
        for _ in range(2):
            acc.observe(result(attackers=[9]), 1.0)
        assert acc.convicted_nodes() == []
        acc.observe(result(attackers=[9]), 1.0)
        assert 9 in acc.convicted_nodes()

    def test_conviction_hysteresis_and_decay_release(self):
        acc = EvidenceAccumulator(64, self.CONFIG)
        for _ in range(5):
            acc.observe(result(attackers=[5]), 1.0)
        assert acc.convicted_nodes() == [5]
        # Decaying below the conviction threshold does not drop the
        # conviction; only crossing the release threshold does.
        while acc.suspicion_of(5) >= self.CONFIG.release_threshold:
            acc.observe(result(), 0.0)
            if acc.suspicion_of(5) >= self.CONFIG.release_threshold:
                assert acc.convicted_nodes() == [5]
        assert acc.convicted_nodes() == []

    def test_reset_node_wipes_stale_evidence(self):
        acc = EvidenceAccumulator(64, self.CONFIG)
        for _ in range(5):
            acc.observe(result(attackers=[5]), 1.0)
        acc.reset_node(5)
        assert acc.convicted_nodes() == []
        assert acc.suspicion_of(5) == 0.0

    def test_zero_weight_windows_only_decay(self):
        acc = EvidenceAccumulator(64, self.CONFIG)
        acc.observe(result(attackers=[5]), 1.0)
        before = acc.suspicion_of(5)
        acc.observe(result(attackers=[5]), 0.0)
        assert acc.suspicion_of(5) == pytest.approx(before * self.CONFIG.decay)


class TestFrontierEvidence:
    CONFIG = EvidenceConfig(decay=0.9, conviction_threshold=3.4, frontier_weight=0.3)

    def test_frontier_credited_only_when_under_localized(self):
        acc = EvidenceAccumulator(64, self.CONFIG)
        # Fully explained window: one attacker estimated, one named — the
        # turning point gets nothing.
        acc.observe(result(attackers=[5], frontier=[12], estimated=1), 1.0)
        assert acc.suspicion_of(12) == 0.0
        # Under-localized window: estimate exceeds the named set.
        acc.observe(result(attackers=[5], frontier=[12], estimated=2), 1.0)
        assert acc.suspicion_of(12) == pytest.approx(0.3)

    def test_frontier_alone_cannot_convict(self):
        """Corroborative only: steady frontier evidence plateaus below the bar."""
        acc = EvidenceAccumulator(64, self.CONFIG)
        for _ in range(200):
            acc.observe(result(attackers=[], frontier=[12], estimated=1), 1.0)
        assert acc.suspicion_of(12) < self.CONFIG.conviction_threshold
        assert acc.convicted_nodes() == []


class TestDetourDiscountsAndPromotions:
    """Carrier-aware evidence weighting of the degraded guard's stream."""

    CONFIG = EvidenceConfig(decay=0.9, conviction_threshold=3.4, frontier_weight=0.3)

    def test_discounts_scale_both_channels(self):
        """An uncorroborated carrier's direct naming AND frontier trace are
        both scaled: reroute-shifted phantoms name as densely as real weak
        colluders, so no channel is trustworthy on its own."""
        acc = EvidenceAccumulator(64, self.CONFIG)
        acc.observe(
            result(attackers=[3], frontier=[4], estimated=2),
            1.0,
            discounts={3: 0.5, 4: 0.5},
        )
        assert acc.suspicion_of(3) == pytest.approx(0.5)
        assert acc.suspicion_of(4) == pytest.approx(0.15)

    def test_promoted_frontier_counts_as_direct_naming(self):
        acc = EvidenceAccumulator(64, self.CONFIG)
        acc.observe(
            result(attackers=[], frontier=[7], estimated=1),
            1.0,
            promotions=frozenset({7}),
        )
        assert acc.suspicion_of(7) == pytest.approx(self.CONFIG.tlm_weight)

    def test_promotion_bypasses_under_localization_gate(self):
        """Phantoms filling the attacker estimate must not close the
        frontier channel on a corroborated carrier: the window is fully
        'explained' only because the phantom stole the naming."""
        acc = EvidenceAccumulator(64, self.CONFIG)
        acc.observe(
            result(attackers=[5], frontier=[7, 12], estimated=1),
            1.0,
            promotions=frozenset({7}),
        )
        assert acc.suspicion_of(7) == pytest.approx(self.CONFIG.tlm_weight)
        assert acc.suspicion_of(12) == 0.0  # ordinary frontier stays gated

    def test_promoted_trace_trajectory_convicts(self):
        """A corroborated colluder traced every window convicts on the same
        schedule as four consecutive direct namings."""
        acc = EvidenceAccumulator(64, self.CONFIG)
        fresh = []
        for _ in range(4):
            fresh += acc.observe(
                result(attackers=[9], frontier=[7], estimated=1),
                1.0,
                promotions=frozenset({7}),
            )
        assert 7 in fresh
        # The same trajectory without corroboration stays un-convictable
        # even with the frontier channel open (under-localized windows).
        acc2 = EvidenceAccumulator(64, self.CONFIG)
        for _ in range(200):
            acc2.observe(
                result(attackers=[9], frontier=[7], estimated=2),
                1.0,
                discounts={7: 0.5},
            )
        assert 7 not in acc2.convicted_nodes()


class TestGuardEvidenceIntegration:
    """The guard acting on convictions with no detector support at all."""

    class SubThresholdFence:
        """Stub pipeline: never detects, but persistently names one node.

        Idempotent per cycle, because the guard re-runs localization on
        evidence-bearing sub-threshold windows.
        """

        def __init__(self, attacker, probability=0.45):
            self.attacker = attacker
            self.probability = probability

        def process_sample(self, sample, force_localization=False, detection=None):
            return LocalizationResult(
                cycle=sample.cycle,
                detected=False,
                detection_probability=self.probability,
                attackers=[self.attacker],
            )

    def test_stealth_conviction_engages_without_any_detection(self):
        from types import SimpleNamespace

        from repro.defense.guard import DL2FenceGuard
        from repro.defense.policy import MitigationPolicy
        from repro.noc.simulator import NoCSimulator, SimulationConfig

        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        guard = DL2FenceGuard(
            self.SubThresholdFence(attacker=5),
            MitigationPolicy.quarantine(engage_after=2),
            evidence=EvidenceConfig(
                decay=0.9, conviction_threshold=3.4, probability_floor=0.25
            ),
        )
        guard.simulator = simulator
        for index in range(6):
            guard.on_sample(SimpleNamespace(cycle=100 * (index + 1)), simulator)
        # Conviction lands on the 4th evidence-bearing window; two flagged
        # windows later the streak hysteresis engages the quarantine.
        assert guard.engaged_nodes == [5]
        assert simulator.network.injection_limit(5) == 0.0
        assert any(e.kind == "convicted" for e in guard.report.events)
        detected_event = next(e for e in guard.report.events if e.kind == "detected")
        assert "evidence" in detected_event.detail

    def test_evidence_disabled_guard_ignores_sub_threshold_windows(self):
        from types import SimpleNamespace

        from repro.defense.guard import DL2FenceGuard
        from repro.defense.policy import MitigationPolicy
        from repro.noc.simulator import NoCSimulator, SimulationConfig

        simulator = NoCSimulator(SimulationConfig(rows=4, warmup_cycles=0))
        guard = DL2FenceGuard(
            self.SubThresholdFence(attacker=5),
            MitigationPolicy.quarantine(engage_after=2),
            evidence=False,
        )
        guard.simulator = simulator
        for index in range(10):
            guard.on_sample(SimpleNamespace(cycle=100 * (index + 1)), simulator)
        assert guard.engaged_nodes == []
        assert guard.evidence is None
