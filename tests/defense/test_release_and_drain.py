"""Staggered release probes and drain-aware recovery accounting.

Two post-containment behaviours of the guard:

* releases are probes — clean windows lift **one** fence at a time, least
  re-engaged node first, with ``release_probe_spacing`` clean windows
  between consecutive probes;
* recovery metrics separate fence quality from backlog drain — benign
  deliveries split at the containment epoch into *fresh* (created under the
  fence) and *backlog* (created before it, i.e. attack damage draining).
"""

import math

from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseReport
from repro.monitor.sampler import MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.traffic.flooding import FloodingAttacker, FloodingConfig
from repro.traffic.synthetic import UniformRandomTraffic

from tests.defense.test_guard import OracleFence, drive
from repro.defense.guard import DL2FenceGuard


def _policy(**overrides):
    overrides.setdefault("engage_after", 1)
    overrides.setdefault("release_after", 2)
    overrides.setdefault("stale_after", 99)
    overrides.setdefault("reengage_backoff", 1.0)
    return MitigationPolicy.quarantine(**overrides)


class TestStaggeredReleaseProbes:
    def test_one_fence_lifts_per_clean_window(self):
        guard, _ = drive(
            [(True, [5, 9]), (False, []), (False, []), (False, [])], _policy()
        )
        released = [e for e in guard.report.events if e.kind == "released"]
        assert [e.nodes for e in released] == [(5,), (9,)]
        assert released[0].cycle < released[1].cycle
        assert "staggered probe" in released[0].detail
        assert guard.engaged_nodes == []

    def test_probe_spacing_delays_the_next_release(self):
        guard, _ = drive(
            [(True, [5, 9])] + [(False, [])] * 5,
            _policy(release_probe_spacing=2),
        )
        released = [e for e in guard.report.events if e.kind == "released"]
        assert [e.nodes for e in released] == [(5,), (9,)]
        # Both became ready at the same window; the second probe waited the
        # configured two windows instead of firing in the very next one.
        assert released[1].cycle - released[0].cycle == 200

    def test_least_reengaged_node_probes_first(self):
        """A repeat offender is the *last* fence lifted, not the first."""
        guard, _ = drive(
            [(True, [9]), (False, []), (False, []), (True, [5, 9])]
            + [(False, [])] * 3,
            _policy(),
        )
        released = [e for e in guard.report.events if e.kind == "released"]
        # First release is node 9's initial engagement; after the joint
        # re-engagement, first-time offender 5 is probed before repeat
        # offender 9.
        assert [e.nodes for e in released] == [(9,), (5,), (9,)]

    def test_no_mass_release_ever(self):
        guard, _ = drive(
            [(True, [3, 5, 9])] + [(False, [])] * 6, _policy()
        )
        released = [e for e in guard.report.events if e.kind == "released"]
        assert len(released) == 3
        assert all(len(event.nodes) == 1 for event in released)


class TestDrainAwareAccounting:
    ROWS = 6
    PERIOD = 128
    WARMUP = 64

    def _run(self, attack_windows=6, post_windows=5):
        simulator = NoCSimulator(
            SimulationConfig(rows=self.ROWS, warmup_cycles=self.WARMUP, seed=3)
        )
        simulator.add_source(
            UniformRandomTraffic(simulator.topology, injection_rate=0.02, seed=42)
        )
        attacker = simulator.topology.node_id(4, 4)
        victim = simulator.topology.node_id(1, 1)
        attack_start = self.WARMUP + 2 * self.PERIOD
        attack_end = attack_start + attack_windows * self.PERIOD
        simulator.add_source(
            FloodingAttacker(
                FloodingConfig(
                    attackers=(attacker,),
                    victim=victim,
                    fir=0.8,
                    start_cycle=attack_start,
                    end_cycle=attack_end,
                ),
                simulator.topology,
                seed=43,
            )
        )
        guard = DL2FenceGuard(
            OracleFence([attacker]),
            MitigationPolicy.quarantine(
                engage_after=2, release_after=3, stale_after=99, flush_queue=True
            ),
            attack_start=attack_start,
            true_attackers=(attacker,),
        )
        guard.attach(
            simulator, monitor_config=MonitorConfig(sample_period=self.PERIOD)
        )
        windows = 2 + attack_windows + post_windows
        simulator.run(self.WARMUP + windows * self.PERIOD + 1)
        return guard.report

    def test_fresh_backlog_split_is_consistent(self):
        report = self._run()
        engagement = report.engagement_cycle
        assert engagement is not None
        for window in report.windows:
            assert (
                window.benign_fresh_delivered + window.benign_backlog_delivered
                == window.benign_delivered
            )
            if window.cycle <= engagement:
                # Before containment everything counts as fresh.
                assert window.benign_backlog_delivered == 0

    def test_backlog_drains_after_containment(self):
        report = self._run()
        assert report.backlog_drained > 0
        # The drained backlog shows up only in post-engagement windows.
        drained = [
            w for w in report.windows if w.benign_backlog_delivered > 0
        ]
        assert drained
        assert all(w.cycle > report.engagement_cycle for w in drained)

    def test_fresh_latency_separates_fence_quality_from_drain(self):
        report = self._run()
        plain = report.post_mitigation_latency()
        fresh = report.post_mitigation_fresh_latency()
        assert not math.isnan(plain) and not math.isnan(fresh)
        # Backlog packets carry attack-era queueing, so excluding them can
        # only lower (or preserve) the measured post-mitigation latency.
        assert fresh <= plain * 1.01
        baseline = report.pre_attack_latency()
        assert report.fresh_recovery_ratio(baseline) <= (
            report.recovery_ratio(baseline) * 1.01
        )

    def test_epoch_clears_once_everything_is_released(self):
        report = self._run(post_windows=8)
        release = report.release_cycle
        assert release is not None
        after = [
            w for w in report.windows if w.cycle > release and not w.restricted
        ]
        assert after
        assert all(w.benign_backlog_delivered == 0 for w in after)

    def test_drain_fields_round_trip_through_payload(self):
        report = self._run()
        restored = DefenseReport.from_payload(report.as_dict())
        assert restored.backlog_drained == report.backlog_drained
        assert restored.summary()["backlog_drained"] == (
            report.summary()["backlog_drained"]
        )
        left = restored.post_mitigation_fresh_latency()
        right = report.post_mitigation_fresh_latency()
        assert (math.isnan(left) and math.isnan(right)) or left == right
        assert report.as_dict()["policy"]["release_probe_spacing"] == 1
