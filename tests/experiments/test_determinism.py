"""Seed-for-seed reproducibility of defended episodes.

The simulator's vectorized injection paths (active-node source-queue scan,
batched attacker draws, batched frame extraction) must stay deterministic:
the same ``ScenarioGenerator``/episode seed has to reproduce the *entire*
defense timeline bit for bit.  ``DefenseReport.as_dict()`` serializes every
window, event and metric (NaN-scrubbed so ``==`` works), making the
comparison exhaustive rather than spot-checked.
"""

from __future__ import annotations

from repro.defense.policy import MitigationPolicy
from repro.experiments.mitigation import (
    default_multi_scenario,
    run_defended_episode,
)
from repro.traffic.scenario import ScenarioGenerator


class TestEpisodeDeterminism:
    def test_same_seed_identical_report(self, trained_pipeline, small_builder):
        """Two identically seeded multi-attack episodes agree exactly."""
        scenario = default_multi_scenario(small_builder, num_flows=2, fir=0.8)
        policy = MitigationPolicy.quarantine(engage_after=2, release_after=4)

        def episode():
            report, baseline = run_defended_episode(
                trained_pipeline,
                small_builder,
                policy,
                fir=0.8,
                scenario=scenario,
                seed=123,
                baseline_latency=10.0,  # skip the baseline re-simulation
            )
            return report

        first = episode().as_dict()
        second = episode().as_dict()
        assert first == second

    def test_different_seed_changes_timeline(self, trained_pipeline, small_builder):
        """The comparison has teeth: another seed produces another timeline."""
        scenario = default_multi_scenario(small_builder, num_flows=2, fir=0.8)
        policy = MitigationPolicy.quarantine(engage_after=2, release_after=4)

        def episode(seed):
            report, _ = run_defended_episode(
                trained_pipeline,
                small_builder,
                policy,
                fir=0.8,
                scenario=scenario,
                seed=seed,
                baseline_latency=10.0,
            )
            return report.as_dict()

        assert episode(123)["windows"] != episode(124)["windows"]

    def test_generator_suite_reproducible(self, small_topology):
        """Same generator seed -> identical multi-attack scenario draw."""
        first = ScenarioGenerator(small_topology, seed=9).random_multi_scenario(
            num_flows=2
        )
        second = ScenarioGenerator(small_topology, seed=9).random_multi_scenario(
            num_flows=2
        )
        assert first == second
