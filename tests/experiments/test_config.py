"""Unit tests for the experiment configuration."""

import pytest

from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.rows == 8
        assert config.fir == 0.8

    def test_quick_and_paper_scale(self):
        assert ExperimentConfig.quick().rows < ExperimentConfig().rows
        assert ExperimentConfig.paper_scale().rows == 16
        assert ExperimentConfig.paper_scale().sample_period == 1000

    def test_dataset_config_inherits_scale(self):
        config = ExperimentConfig(rows=6, sample_period=100, seed=3)
        dataset = config.dataset_config(seed_offset=10)
        assert dataset.rows == 6
        assert dataset.sample_period == 100
        assert dataset.seed == 13

    def test_scaled_override(self):
        config = ExperimentConfig().scaled(rows=12, fir=0.5)
        assert config.rows == 12
        assert config.fir == 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExperimentConfig(rows=2)
        with pytest.raises(ValueError):
            ExperimentConfig(scenarios_per_benchmark=0)

    def test_from_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MESH_ROWS", "10")
        monkeypatch.setenv("REPRO_FIR", "0.5")
        config = ExperimentConfig.from_environment()
        assert config.rows == 10
        assert config.fir == 0.5

    def test_from_environment_defaults_without_vars(self, monkeypatch):
        for name in (
            "REPRO_MESH_ROWS",
            "REPRO_SAMPLES_PER_RUN",
            "REPRO_SCENARIOS_PER_BENCHMARK",
            "REPRO_SAMPLE_PERIOD",
            "REPRO_FIR",
            "REPRO_SEED",
        ):
            monkeypatch.delenv(name, raising=False)
        assert ExperimentConfig.from_environment() == ExperimentConfig()


class TestOperatingPoints:
    """The adaptive benign-rate / scenario-spread table keyed by mesh scale."""

    def test_small_meshes_keep_the_default_point(self):
        config = ExperimentConfig.for_mesh(8)
        assert config.rows == 8
        assert config.benign_injection_rate == ExperimentConfig().benign_injection_rate
        assert config.scenarios_per_benchmark == (
            ExperimentConfig().scenarios_per_benchmark
        )

    def test_paper_scale_16x16_widens_training_spread(self):
        """At 16x16 a spread of 2 leaves the detector blind to edge flows."""
        config = ExperimentConfig.for_mesh(16)
        assert config.benign_injection_rate == 0.02
        assert config.scenarios_per_benchmark == 6

    def test_32x32_reproduces_the_hand_tuned_point(self):
        """PR 4's 32x32 sweep needed 0.01 / 12-per-benchmark — now automatic."""
        config = ExperimentConfig.for_mesh(32)
        assert config.benign_injection_rate == 0.01
        assert config.scenarios_per_benchmark == 12

    def test_rate_falls_and_spread_grows_with_scale(self):
        from repro.experiments.config import operating_point

        rates = []
        spreads = []
        for rows in (8, 16, 20, 32, 64):
            rate, spread = operating_point(rows)
            rates.append(rate)
            spreads.append(spread)
        assert rates == sorted(rates, reverse=True)
        assert spreads == sorted(spreads)

    def test_overrides_win_over_the_table(self):
        config = ExperimentConfig.for_mesh(32, benign_injection_rate=0.005, seed=9)
        assert config.benign_injection_rate == 0.005
        assert config.seed == 9
        assert config.scenarios_per_benchmark == 12

    def test_invalid_rows(self):
        from repro.experiments.config import operating_point

        with pytest.raises(ValueError):
            operating_point(2)
