"""Unit tests for the experiment configuration."""

import pytest

from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.rows == 8
        assert config.fir == 0.8

    def test_quick_and_paper_scale(self):
        assert ExperimentConfig.quick().rows < ExperimentConfig().rows
        assert ExperimentConfig.paper_scale().rows == 16
        assert ExperimentConfig.paper_scale().sample_period == 1000

    def test_dataset_config_inherits_scale(self):
        config = ExperimentConfig(rows=6, sample_period=100, seed=3)
        dataset = config.dataset_config(seed_offset=10)
        assert dataset.rows == 6
        assert dataset.sample_period == 100
        assert dataset.seed == 13

    def test_scaled_override(self):
        config = ExperimentConfig().scaled(rows=12, fir=0.5)
        assert config.rows == 12
        assert config.fir == 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExperimentConfig(rows=2)
        with pytest.raises(ValueError):
            ExperimentConfig(scenarios_per_benchmark=0)

    def test_from_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_MESH_ROWS", "10")
        monkeypatch.setenv("REPRO_FIR", "0.5")
        config = ExperimentConfig.from_environment()
        assert config.rows == 10
        assert config.fir == 0.5

    def test_from_environment_defaults_without_vars(self, monkeypatch):
        for name in (
            "REPRO_MESH_ROWS",
            "REPRO_SAMPLES_PER_RUN",
            "REPRO_SCENARIOS_PER_BENCHMARK",
            "REPRO_SAMPLE_PERIOD",
            "REPRO_FIR",
            "REPRO_SEED",
        ):
            monkeypatch.delenv(name, raising=False)
        assert ExperimentConfig.from_environment() == ExperimentConfig()
