"""Unit/driver tests for the robustness-matrix sweep plumbing.

The containment acceptance itself lives in
``benchmarks/bench_robustness_matrix.py`` (it needs properly trained 8x8
and 16x16 pipelines); these tests cover the driver mechanics at the quick
test scale — point assembly, lossless payload round-trips, per-episode
caching and input validation.
"""

import math

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.robustness import (
    DEFAULT_ROBUSTNESS_POLICY,
    RobustnessPoint,
    run_robustness_matrix,
)
from repro.runtime.cache import ArtifactCache
from repro.runtime.engine import ExperimentEngine
from repro.runtime.parallel import ParallelRunner

QUICK = ExperimentConfig.quick()


def make_point(**overrides):
    values = dict(
        attack="pulsed",
        rows=8,
        policy="quarantine",
        detected=True,
        detection_latency=200,
        time_to_mitigation=400,
        time_to_full_containment=600,
        num_attackers=1,
        attackers_fenced=1,
        contained=True,
        collateral_nodes=(),
        collateral_node_windows=0,
        localization_rounds=1,
        reengagements=0,
        evidence_convictions=1,
        baseline_latency=9.5,
        attack_latency=12.0,
        unmitigated_latency=16.0,
        mitigated_latency=9.8,
        recovery_ratio=1.03,
        description="pulsed flood",
    )
    values.update(overrides)
    return RobustnessPoint(**values)


class TestRobustnessPoint:
    def test_payload_round_trip(self):
        point = make_point(collateral_nodes=(3, 7))
        assert RobustnessPoint.from_payload(point.to_payload()) == point

    def test_as_dict_is_table_shaped(self):
        row = make_point().as_dict()
        assert row["attack"] == "pulsed"
        assert row["contained"] is True
        assert row["collateral"] == 0


class TestRunRobustnessMatrix:
    def test_unknown_attack_rejected(self):
        with pytest.raises(KeyError):
            run_robustness_matrix(
                attacks=("teleporting",), engine=ExperimentEngine.disabled()
            )

    def test_quick_scale_end_to_end(self, tmp_path):
        """One variant at the quick scale: points assemble, cache memoises."""
        engine = ExperimentEngine(
            cache=ArtifactCache(root=tmp_path, enabled=True),
            runner=ParallelRunner(workers=1),
        )
        kwargs = dict(
            attacks=("pulsed",),
            rows_values=(QUICK.rows,),
            config=QUICK,
            attack_windows=6,
            engine=engine,
        )
        points = run_robustness_matrix(**kwargs)
        assert len(points) == 1
        point = points[0]
        assert point.attack == "pulsed"
        assert point.rows == QUICK.rows
        assert point.policy == DEFAULT_ROBUSTNESS_POLICY.name
        assert point.num_attackers == 1
        assert not math.isnan(point.baseline_latency)
        assert point.description.startswith("pulsed flood")
        # Second call is served from the matrix cache, identically.
        again = run_robustness_matrix(**kwargs)
        assert [p.to_payload() for p in again] == [p.to_payload() for p in points]
