"""Per-episode caching of the mitigation sweep (ROADMAP follow-up).

The whole-sweep record was already memoised; these tests pin the finer
granularity: every (FIR, policy) episode and every unmitigated comparator is
cached individually, so extending a sweep only simulates the new episodes,
and a cached episode reproduces its MitigationPoint bit for bit.
"""

import math

from repro.defense.policy import MitigationPolicy
from repro.defense.report import DefenseEvent, DefenseReport, WindowRecord
from repro.experiments import ExperimentConfig
from repro.experiments.mitigation import run_mitigation_sweep
from repro.runtime.cache import ArtifactCache
from repro.runtime.engine import ExperimentEngine
from repro.runtime.parallel import ParallelRunner

QUICK = ExperimentConfig.quick()
POLICY = MitigationPolicy.quarantine(engage_after=1)


def _engine(tmp_path) -> ExperimentEngine:
    return ExperimentEngine(
        cache=ArtifactCache(root=tmp_path / "cache", enabled=True),
        runner=ParallelRunner(workers=1),
    )


class TestDefenseReportPayload:
    def test_round_trip_preserves_everything(self):
        report = DefenseReport(
            policy=MitigationPolicy.throttle(0.2, engage_after=3, flush_queue=True),
            sample_period=100,
            attack_start=200,
            attack_end=900,
            true_attackers=(5, 9),
            windows=[
                WindowRecord(
                    index=0,
                    cycle=100,
                    detected=False,
                    probability=0.12,
                    phase="benign",
                    benign_latency=math.nan,
                ),
                WindowRecord(
                    index=1,
                    cycle=200,
                    detected=True,
                    probability=0.97,
                    phase="attack",
                    victims=(1, 2),
                    attackers=(5,),
                    restricted=(5,),
                    benign_latency=14.5,
                    benign_delivered=7,
                    malicious_delivered=3,
                ),
            ],
            events=[
                DefenseEvent(cycle=200, kind="detected", detail="p=0.97"),
                DefenseEvent(cycle=200, kind="engaged", nodes=(5,), round=1),
            ],
        )
        rebuilt = DefenseReport.from_payload(report.to_payload())
        assert rebuilt.policy == report.policy
        assert rebuilt.windows == report.windows
        assert rebuilt.events == report.events
        assert rebuilt.as_dict() == report.as_dict()


class TestPerEpisodeCache:
    def test_extending_firs_reuses_cached_episodes(self, tmp_path):
        """Changing the FIR set must not re-run the overlapping episodes."""
        engine = _engine(tmp_path)
        first = run_mitigation_sweep(
            firs=(0.8,),
            rows_values=(QUICK.rows,),
            policies=(POLICY,),
            config=QUICK,
            engine=engine,
        )
        stores_after_first = engine.cache.stats.stores
        assert stores_after_first > 0

        # A different sweep shape misses the whole-sweep record but must hit
        # the per-episode entries for the shared FIR.
        second_engine = _engine(tmp_path)
        second = run_mitigation_sweep(
            firs=(0.8, 0.4),
            rows_values=(QUICK.rows,),
            policies=(POLICY,),
            config=QUICK,
            engine=second_engine,
        )
        assert second_engine.cache.stats.hits > 0
        shared_first = [p for p in first if p.fir == 0.8]
        shared_second = [p for p in second if p.fir == 0.8]
        assert [p.to_payload() for p in shared_first] == [
            p.to_payload() for p in shared_second
        ]

    def test_cached_episode_matches_fresh(self, tmp_path):
        """A cache-served sweep equals the freshly simulated one exactly."""
        warm_engine = _engine(tmp_path)
        fresh = run_mitigation_sweep(
            firs=(0.8,),
            rows_values=(QUICK.rows,),
            policies=(POLICY,),
            config=QUICK,
            engine=warm_engine,
        )
        replay_engine = _engine(tmp_path)
        replayed = run_mitigation_sweep(
            firs=(0.8,),
            rows_values=(QUICK.rows,),
            policies=(POLICY,),
            config=QUICK,
            engine=replay_engine,
        )
        assert [p.to_payload() for p in fresh] == [p.to_payload() for p in replayed]
        assert replay_engine.cache.stats.hits > 0
