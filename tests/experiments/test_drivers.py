"""Integration tests for the table/figure experiment drivers (quick scale)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    format_feature_table,
    format_rows,
    run_comparison,
    run_feature_experiment,
    run_latency_sweep,
    run_localization_examples,
    run_overhead_sweep,
)
from repro.experiments.localization_examples import paper_example_scenarios
from repro.monitor.features import FeatureKind

QUICK = ExperimentConfig.quick()


@pytest.fixture(scope="module")
def feature_result():
    return run_feature_experiment(
        FeatureKind.VCO,
        FeatureKind.BOC,
        benchmarks=["uniform_random", "blackscholes"],
        config=QUICK,
    )


class TestFeatureExperiment:
    def test_covers_requested_benchmarks(self, feature_result):
        assert {r.benchmark for r in feature_result.per_benchmark} == {
            "uniform_random",
            "blackscholes",
        }

    def test_reports_all_metrics(self, feature_result):
        for result in feature_result.per_benchmark:
            for metric in ("accuracy", "precision", "recall", "f1"):
                assert 0.0 <= getattr(result.detection, metric) <= 1.0
            assert result.localization is not None
            assert 0.0 <= result.localization.accuracy <= 1.0

    def test_averages_split_stp_and_parsec(self, feature_result):
        stp = feature_result.average_detection(synthetic=True)
        parsec = feature_result.average_detection(synthetic=False)
        overall = feature_result.average_detection()
        assert stp.support + parsec.support == overall.support

    def test_table_formatting(self, feature_result):
        text = format_feature_table(feature_result)
        assert "uniform_random" in text
        assert "accuracy" in text
        assert "|" in text

    def test_missing_benchmark_lookup(self, feature_result):
        with pytest.raises(KeyError):
            feature_result.result_for("tornado")


class TestLatencySweep:
    def test_sweep_reports_all_points(self):
        points = run_latency_sweep(firs=(0.0, 0.5, 1.0), config=QUICK, cycles=260)
        assert [p.fir for p in points] == [0.0, 0.5, 1.0]
        for point in points:
            assert point.packet_latency >= 0.0
            assert 0.0 <= point.delivery_ratio <= 1.0

    def test_attack_degrades_performance(self):
        points = run_latency_sweep(
            firs=(0.0, 1.0), config=QUICK.scaled(rows=8), cycles=600, num_attackers=2
        )
        baseline, saturated = points
        assert (
            saturated.packet_latency > baseline.packet_latency
            or saturated.delivery_ratio < baseline.delivery_ratio
        )


class TestLocalizationExamples:
    def test_paper_scenarios_on_16x16(self):
        single, double = paper_example_scenarios(16)
        assert single.attackers == (104,)
        assert single.victim == 0
        assert double.attackers == (192, 15)
        assert double.victim == 85

    def test_scenarios_rescaled_for_small_mesh(self):
        for scenario in paper_example_scenarios(QUICK.rows):
            assert all(node < QUICK.rows**2 for node in scenario.attackers)
            assert scenario.victim not in scenario.attackers

    def test_examples_run_and_report(self):
        examples = run_localization_examples(config=QUICK)
        assert len(examples) == 2
        for example in examples:
            assert 0.0 <= example.report.accuracy <= 1.0
            assert example.true_victims
            assert isinstance(example.predicted_attackers, list)


class TestOverheadSweep:
    def test_summary_structure(self):
        summary = run_overhead_sweep()
        assert set(summary["measured_percent"]) == {4, 8, 16, 32}
        assert summary["paper_percent"][16] == 0.45
        assert 0.0 < summary["saving_8_to_16"] < 1.0
        assert 0.0 < summary["saving_vs_sniffer_8x8"] < 1.0


class TestComparison:
    def test_measured_and_published_rows(self):
        summary = run_comparison(config=QUICK, benchmarks=["uniform_random"])
        names = [row.name for row in summary["measured"]]
        assert any("dl2fence" in name for name in names)
        assert {"perceptron", "svm", "gradient_boosting", "threshold"} <= set(names)
        assert len(summary["published"]) == 4
        text = format_rows([row.as_dict() for row in summary["measured"]])
        assert "accuracy" in text


class TestFormatRows:
    def test_empty(self):
        assert format_rows([]) == "(empty table)"

    def test_alignment_and_none_handling(self):
        rows = [{"a": 1.23456, "b": None}, {"a": 2.0, "b": "x"}]
        text = format_rows(rows)
        assert "N/A" in text
        assert "1.235" in text
