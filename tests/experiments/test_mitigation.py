"""Tests for the closed-loop mitigation experiment driver (quick scale)."""

import math

from repro.defense.policy import MitigationPolicy
from repro.defense.report import PHASES
from repro.experiments import ExperimentConfig, format_rows
from repro.experiments.mitigation import (
    run_defended_episode,
    run_mitigation_sweep,
    unmitigated_attack_latency,
)

QUICK = ExperimentConfig.quick()


class TestDefendedEpisode:
    def test_report_and_baseline(self, trained_pipeline, small_builder):
        report, baseline = run_defended_episode(
            trained_pipeline,
            small_builder,
            MitigationPolicy.throttle(0.1),
            fir=0.8,
            pre_attack_windows=2,
            attack_windows=4,
            post_attack_windows=2,
        )
        assert baseline > 0.0
        assert len(report.windows) == 8
        assert all(window.phase in PHASES for window in report.windows)
        assert report.attack_start == (
            small_builder.config.warmup_cycles
            + 2 * small_builder.config.sample_period
        )
        # windows strictly before the attack can never be under mitigation
        for window in report.windows:
            if window.cycle < report.attack_start:
                assert window.phase in ("benign", "attack")
                assert window.restricted == ()

    def test_unmitigated_comparator(self, small_builder):
        latency = unmitigated_attack_latency(
            small_builder,
            fir=0.8,
            pre_attack_windows=2,
            attack_windows=4,
            post_attack_windows=2,
        )
        assert not math.isnan(latency)
        assert latency > 0.0


class TestMitigationSweep:
    def test_sweep_structure(self):
        points = run_mitigation_sweep(
            firs=(0.8,),
            rows_values=(QUICK.rows,),
            policies=(MitigationPolicy.quarantine(engage_after=1),),
            config=QUICK,
        )
        assert len(points) == 1
        point = points[0]
        assert point.fir == 0.8
        assert point.rows == QUICK.rows
        assert point.policy == "quarantine"
        assert point.baseline_latency > 0.0
        assert point.unmitigated_latency > 0.0
        row = point.as_dict()
        assert {"fir", "policy", "recovery_ratio", "collateral"} <= set(row)
        assert "recovery_ratio" in format_rows([row])
