"""Smoke tests for the example applications.

The examples are full experiment runs (minutes each), so these tests only
check that every example compiles, documents itself, and exposes a ``main``
entry point — the benchmark suite exercises the underlying drivers at scale.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_at_least_four_examples_exist():
    assert len(EXAMPLE_FILES) >= 4
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExampleStructure:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} is missing a docstring"

    def test_has_main_entry_point(self, path):
        tree = ast.parse(path.read_text())
        function_names = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in function_names
        assert "__main__" in path.read_text()

    def test_only_uses_public_repro_imports(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                assert root in {"repro", "numpy", "__future__", "sys"}, (
                    f"{path.name} imports unexpected module {node.module}"
                )
