"""End-to-end integration tests across the whole stack.

These follow the paper's operational story: simulate a NoC running a workload,
overlay a flooding attack, monitor feature frames, train DL2Fence, then detect
the attack, reconstruct the attacking route and pinpoint the attacker.
"""

import numpy as np
import pytest

from repro import (
    AttackScenario,
    DL2Fence,
    DL2FenceConfig,
    DatasetBuilder,
    DatasetConfig,
    GlobalPerformanceMonitor,
    MonitorConfig,
    NoCSimulator,
    SimulationConfig,
    make_synthetic_traffic,
)
from repro.monitor.labeling import victim_mask


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestOnlineDetectionStory:
    def test_known_scenario_detected_and_localized(self, small_builder, trained_pipeline):
        """A fresh attack scenario unseen in training is detected, the route is
        reconstructed, and the TLM points at (or adjacent to) the attacker."""
        topology = small_builder.topology
        scenario = AttackScenario(
            attackers=(topology.node_id(5, 5),), victim=topology.node_id(0, 0), fir=0.8
        )
        run = small_builder.run_benchmark("uniform_random", scenario=scenario, seed=777)
        truth = scenario.ground_truth_victims(topology)

        detections = 0
        recovered_victims: set[int] = set()
        recovered_attackers: set[int] = set()
        for sample in run.samples:
            result = trained_pipeline.process_sample(sample, force_localization=True)
            detections += int(result.detected)
            recovered_victims.update(result.victims)
            recovered_attackers.update(result.attackers)

        assert detections >= len(run.samples) // 2
        assert len(recovered_victims & truth) >= len(truth) // 2
        if recovered_attackers:
            distance = min(
                topology.manhattan_distance(a, scenario.attackers[0])
                for a in recovered_attackers
            )
            assert distance <= 2

    def test_benign_scores_below_attack_scores(self, small_builder, trained_pipeline):
        """Benign windows score lower than attacked windows of the same workload.

        With the deliberately tiny training set of the test fixture the hard
        0.5-threshold decision can misfire, so this asserts the ranking
        property the detector threshold relies on rather than the absolute
        false-alarm rate (which the full-scale benches measure).
        """
        topology = small_builder.topology
        benign_run = small_builder.run_benchmark("uniform_random", seed=778)
        scenario = AttackScenario(
            attackers=(topology.node_id(5, 0),), victim=topology.node_id(0, 5), fir=0.8
        )
        attack_run = small_builder.run_benchmark(
            "uniform_random", scenario=scenario, seed=778
        )
        benign_scores = [
            trained_pipeline.process_sample(s).detection_probability
            for s in benign_run.samples
        ]
        attack_scores = [
            trained_pipeline.process_sample(s).detection_probability
            for s in attack_run.samples
        ]
        assert np.mean(attack_scores) > np.mean(benign_scores)


class TestMonitorSimulatorIntegration:
    def test_manual_wiring_without_builder(self):
        """The lower-level API (simulator + monitor) works without DatasetBuilder."""
        config = SimulationConfig(rows=6, warmup_cycles=16, seed=5)
        simulator = NoCSimulator(config)
        simulator.add_source(
            make_synthetic_traffic("tornado", simulator.topology, injection_rate=0.015, seed=5)
        )
        scenario = AttackScenario(attackers=(35,), victim=0, fir=0.9)
        simulator.add_source(scenario.attacker_source(simulator.topology, seed=6))
        monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=80)).attach(simulator)
        simulator.run(16 + 80 * 3 + 1)

        assert monitor.num_samples == 3
        assert all(sample.attack_active for sample in monitor.samples)
        # The attack route shows up in the BOC frames.
        sample = monitor.samples[-1]
        route_mask = victim_mask(simulator.topology, scenario)
        boc_full = np.zeros_like(route_mask)
        from repro.monitor.frames import pad_to_full_mesh
        from repro.noc.topology import Direction

        for direction in Direction.cardinal():
            boc_full += pad_to_full_mesh(
                sample.boc[direction].values, simulator.topology, direction
            )
        on_route = boc_full[route_mask == 1].mean()
        off_route = boc_full[route_mask == 0].mean()
        assert on_route > 1.5 * off_route


class TestDatasetReproducibility:
    def test_same_seed_same_dataset(self):
        config = DatasetConfig(rows=5, sample_period=64, samples_per_run=2, warmup_cycles=16, seed=9)
        a = DatasetBuilder(config).run_benchmark("uniform_random", seed=1)
        b = DatasetBuilder(config).run_benchmark("uniform_random", seed=1)
        for sample_a, sample_b in zip(a.samples, b.samples):
            for direction in sample_a.vco.frames:
                assert np.allclose(
                    sample_a.vco[direction].values, sample_b.vco[direction].values
                )
                assert np.allclose(
                    sample_a.boc[direction].values, sample_b.boc[direction].values
                )

    def test_different_seeds_differ(self):
        config = DatasetConfig(rows=5, sample_period=64, samples_per_run=2, warmup_cycles=16, seed=9)
        a = DatasetBuilder(config).run_benchmark("uniform_random", seed=1)
        b = DatasetBuilder(config).run_benchmark("uniform_random", seed=2)
        total_diff = 0.0
        for sample_a, sample_b in zip(a.samples, b.samples):
            for direction in sample_a.boc.frames:
                total_diff += np.abs(
                    sample_a.boc[direction].values - sample_b.boc[direction].values
                ).sum()
        assert total_diff > 0
