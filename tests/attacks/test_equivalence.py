"""SoA-vs-object fingerprint equivalence for every refined-DoS generator.

Every attack model's traffic source must inject the identical packet stream
under both simulator backends: both paths share one vectorized RNG draw per
non-silent cycle, so feature frames, delivered-packet order, latency
statistics and monitor ``attack_active`` flags are bit-identical.  A
divergence in any generator's batch path fails loudly here.
"""

import pytest

from repro.attacks import ATTACK_LIBRARY, default_attack
from repro.monitor.sampler import GlobalPerformanceMonitor, MonitorConfig
from repro.noc.simulator import NoCSimulator, SimulationConfig
from repro.traffic.synthetic import UniformRandomTraffic

from tests.noc.test_soa_equivalence import assert_same_samples, assert_same_stats

ROWS = 6
CYCLES = 900


def _episode(backend, model):
    simulator = NoCSimulator(
        SimulationConfig(rows=ROWS, warmup_cycles=16, seed=0, backend=backend)
    )
    simulator.add_source(
        UniformRandomTraffic(simulator.topology, injection_rate=0.04, seed=1)
    )
    source = model.build_source(
        simulator.topology, seed=2, start_cycle=120, end_cycle=800
    )
    simulator.add_source(source)
    # A sample period coprime to the pulsed attack's 96-cycle on/off period,
    # so the instantaneous attack_active probes drift through both phases.
    monitor = GlobalPerformanceMonitor(MonitorConfig(sample_period=80)).attach(
        simulator
    )
    simulator.run(CYCLES)
    return simulator, monitor, source


@pytest.mark.parametrize("name", sorted(ATTACK_LIBRARY))
def test_attack_generator_backend_equivalence(name):
    model = default_attack(name, NoCSimulator(
        SimulationConfig(rows=ROWS, warmup_cycles=0)
    ).topology, sample_period=96)
    soa_sim, soa_monitor, soa_source = _episode("soa", model)
    obj_sim, obj_monitor, obj_source = _episode("object", model)
    assert soa_source.packets_generated == obj_source.packets_generated
    assert soa_source.packets_generated > 0, f"{name} never injected"
    assert_same_samples(soa_monitor, obj_monitor)
    assert_same_stats(soa_sim, obj_sim)
    # Ground-truth flags flow through the duck-typed attacker tracking on
    # both backends identically.
    assert any(sample.attack_active for sample in soa_monitor.samples)
