"""Unit tests for the refined-DoS attack model library."""

import numpy as np
import pytest

from repro.attacks import (
    ATTACK_LIBRARY,
    ColludingFloodAttack,
    MigratingFloodAttack,
    OnRouteFloodAttack,
    PulsedFloodAttack,
    RampingFloodAttack,
    default_attack,
    default_attack_suite,
)
from repro.noc.topology import MeshTopology


TOPOLOGY = MeshTopology(rows=8)


class TestLibrary:
    def test_registry_names(self):
        assert set(ATTACK_LIBRARY) == {
            "pulsed",
            "ramping",
            "migrating",
            "colluding",
            "onroute",
        }

    @pytest.mark.parametrize("name", sorted(ATTACK_LIBRARY))
    def test_default_placements_valid(self, name):
        for rows in (6, 8, 16):
            topology = MeshTopology(rows=rows)
            model = default_attack(name, topology, sample_period=192)
            model.validate(topology)
            assert model.name == name
            assert model.attackers
            assert model.describe()

    def test_default_suite_covers_library(self):
        suite = default_attack_suite(TOPOLOGY, sample_period=200)
        assert set(suite) == set(ATTACK_LIBRARY)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            default_attack("teleporting", TOPOLOGY, sample_period=200)

    def test_too_small_mesh(self):
        with pytest.raises(ValueError):
            default_attack("pulsed", MeshTopology(rows=4), sample_period=200)


class TestPulsed:
    def test_duty_cycle_profile(self):
        attack = PulsedFloodAttack(
            attackers=(54,), victim=9, fir=0.9, on_cycles=10, off_cycles=30
        )
        assert attack.duty_cycle == 0.25
        assert attack.fir_profile_at(0) is not None
        assert attack.fir_profile_at(9) is not None
        assert attack.fir_profile_at(10) is None  # silence, no RNG draw
        assert attack.fir_profile_at(39) is None
        assert attack.fir_profile_at(40) is not None  # next burst

    def test_phase_offsets_bursts(self):
        attack = PulsedFloodAttack(
            attackers=(54,), victim=9, on_cycles=10, off_cycles=30, phase=10
        )
        assert attack.fir_profile_at(0) is None
        assert attack.fir_profile_at(30) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            PulsedFloodAttack(attackers=(), victim=9)
        with pytest.raises(ValueError):
            PulsedFloodAttack(attackers=(9,), victim=9)
        with pytest.raises(ValueError):
            PulsedFloodAttack(attackers=(54,), victim=9, on_cycles=0)


class TestRamping:
    def test_linear_climb_then_hold(self):
        attack = RampingFloodAttack(
            attackers=(54,), victim=9, fir_start=0.1, fir_peak=0.9, ramp_cycles=100
        )
        assert attack.fir_at(0) == pytest.approx(0.1)
        assert attack.fir_at(50) == pytest.approx(0.5)
        assert attack.fir_at(100) == pytest.approx(0.9)
        assert attack.fir_at(10_000) == pytest.approx(0.9)
        profile = attack.fir_profile_at(50)
        assert profile.shape == (1,)
        assert profile[0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RampingFloodAttack(attackers=(54,), victim=9, fir_start=0.9, fir_peak=0.1)


class TestMigrating:
    ATTACK = MigratingFloodAttack(path=(54, 14, 49), victim=9, fir=0.8, dwell_cycles=100)

    def test_position_schedule_wraps(self):
        assert self.ATTACK.position_at(0) == 54
        assert self.ATTACK.position_at(150) == 14
        assert self.ATTACK.position_at(250) == 49
        assert self.ATTACK.position_at(300) == 54  # patrol loop

    def test_profile_activates_one_position(self):
        profile = self.ATTACK.fir_profile_at(150)
        assert profile.tolist() == [0.0, 0.8, 0.0]

    def test_attackers_are_all_positions(self):
        assert self.ATTACK.attackers == (14, 49, 54)

    def test_validation(self):
        with pytest.raises(ValueError):
            MigratingFloodAttack(path=(54,), victim=9)
        with pytest.raises(ValueError):
            MigratingFloodAttack(path=(54, 54), victim=9)
        with pytest.raises(ValueError):
            MigratingFloodAttack(path=(54, 9), victim=9)


class TestColluding:
    def test_aggregate_fir(self):
        attack = ColludingFloodAttack(sources=(54, 49, 14, 52), victim=9, fir=0.15)
        assert attack.aggregate_fir == pytest.approx(0.6)
        assert attack.attackers == (14, 49, 52, 54)

    def test_cross_placement_has_no_shared_routers(self):
        """The canonical colluding placement: four disjoint straight legs."""
        attack = default_attack("colluding", TOPOLOGY, sample_period=200)
        routes = []
        for source, victim in zip(*attack.emitters()):
            from repro.noc.routing import xy_route_victims

            route = set(xy_route_victims(TOPOLOGY, source, victim))
            route.discard(victim)
            routes.append(route)
        for i, a in enumerate(routes):
            for b in routes[i + 1 :]:
                assert not a & b

    def test_validation(self):
        with pytest.raises(ValueError):
            ColludingFloodAttack(sources=(54,), victim=9)
        with pytest.raises(ValueError):
            ColludingFloodAttack(sources=(54, 9), victim=9)


class TestOnRoute:
    def test_requires_on_route_placement(self):
        attack = OnRouteFloodAttack(
            primary_attacker=54, onroute_attacker=52, victim=9
        )
        attack.validate(TOPOLOGY)  # 52 lies on the 54 -> 9 XY route
        off_route = OnRouteFloodAttack(
            primary_attacker=54, onroute_attacker=63, victim=9
        )
        with pytest.raises(ValueError):
            off_route.validate(TOPOLOGY)
        # The victim itself is not a valid hiding spot.
        not_intermediate = OnRouteFloodAttack(
            primary_attacker=54, onroute_attacker=10, victim=9
        )
        with pytest.raises(ValueError):
            not_intermediate.validate(TOPOLOGY)

    def test_emitters_share_victim(self):
        attack = OnRouteFloodAttack(primary_attacker=54, onroute_attacker=52, victim=9)
        sources, victims = attack.emitters()
        assert sources == (54, 52)
        assert victims == (9, 9)
        assert attack.attackers == (52, 54)


class TestAttackSource:
    def test_window_gating_and_counters(self):
        model = PulsedFloodAttack(
            attackers=(54,), victim=9, fir=1.0, on_cycles=10, off_cycles=10
        )
        source = model.build_source(TOPOLOGY, seed=3, start_cycle=100, end_cycle=140)
        assert not source.is_active_at(99)
        assert source.is_active_at(100)
        assert not source.is_active_at(112)  # off phase
        assert not source.is_active_at(140)  # window closed
        assert source.packets_for_cycle(50) == []
        packets = source.packets_for_cycle(100)
        assert len(packets) == 1  # fir=1.0 burst
        assert packets[0].is_malicious
        assert source.packets_generated == 1

    def test_object_and_batch_paths_share_one_stream(self):
        model = ColludingFloodAttack(sources=(54, 49, 14), victim=9, fir=0.5)
        obj = model.build_source(TOPOLOGY, seed=7)
        batch = model.build_source(TOPOLOGY, seed=7)
        for cycle in range(200):
            packets = obj.packets_for_cycle(cycle)
            arrays = batch.packet_batch_for_cycle(cycle)
            if arrays is None:
                assert packets == []
                continue
            sources, destinations, size, malicious = arrays
            assert [p.source for p in packets] == sources.tolist()
            assert [p.destination for p in packets] == destinations.tolist()
            assert malicious
        assert obj.packets_generated == batch.packets_generated

    def test_migrating_draws_are_stream_stable(self):
        """Inactive positions draw RNG too, keeping both paths aligned."""
        model = MigratingFloodAttack(path=(54, 14), victim=9, fir=0.7, dwell_cycles=16)
        source = model.build_source(TOPOLOGY, seed=5)
        seen = set()
        for cycle in range(64):
            for packet in source.packets_for_cycle(cycle):
                seen.add(packet.source)
                assert packet.source == model.position_at(cycle)
        assert seen == {54, 14}

    def test_validates_against_topology(self):
        model = PulsedFloodAttack(attackers=(999,), victim=9)
        with pytest.raises(ValueError):
            model.build_source(TOPOLOGY)


class TestWindowActivity:
    """Window-level ground truth: emits_between / is_active_in."""

    def test_pulsed_burst_between_sampling_instants_marks_window(self):
        attack = PulsedFloodAttack(
            attackers=(54,), victim=9, fir=0.9, on_cycles=10, off_cycles=90
        )
        # Probe instants can both land in the off phase...
        assert attack.fir_profile_at(50) is None
        assert attack.fir_profile_at(150) is None
        # ...while the window between them contains a full burst.
        assert attack.emits_between(50, 150)
        # A window entirely inside one off phase stays clean.
        assert not attack.emits_between(11, 99)
        # Spanning a whole period always hits a burst.
        assert attack.emits_between(37, 137)
        assert not attack.emits_between(50, 50)

    def test_source_interval_respects_attack_window(self):
        model = PulsedFloodAttack(
            attackers=(54,), victim=9, fir=1.0, on_cycles=10, off_cycles=90
        )
        source = model.build_source(TOPOLOGY, start_cycle=1000, end_cycle=2000)
        assert not source.is_active_in(0, 1000)      # before the attack
        assert source.is_active_in(900, 1100)        # overlaps the first burst
        assert not source.is_active_in(2000, 9000)   # after the attack
        # Overlapping the window but only during an off phase: inactive.
        assert not source.is_active_in(1011, 1099)

    def test_continuous_variants_active_on_any_overlap(self):
        model = ColludingFloodAttack(sources=(54, 49), victim=9, fir=0.2)
        source = model.build_source(TOPOLOGY, start_cycle=500, end_cycle=600)
        assert source.is_active_in(0, 501)
        assert source.is_active_in(599, 700)
        assert not source.is_active_in(600, 700)
