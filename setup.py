"""Setuptools shim.

Metadata lives in ``pyproject.toml``; this file exists so the package can be
installed editable (``pip install -e . --no-use-pep517 --no-build-isolation``)
in fully offline environments that lack the ``wheel`` package required by the
PEP 660 editable-install path.
"""

from setuptools import setup

setup()
